//! End-to-end tests for `fcdpm-analyze`: the committed workspace is
//! clean, reports are deterministic, and seeded defects (a drifted
//! paper constant, an infeasible job grid, a dimensional mix behind a
//! re-export, tainted artifact flows, lock-order cycles, unaccounted
//! digest fields) are detected in scratch workspaces and fixture pairs.

use std::fs;
use std::path::{Path, PathBuf};

use fcdpm_analyze::{
    cache, digest, hints, locks, rule_catalogue, taint, AnalyzeRule, EngineOptions,
};
use fcdpm_lint::sarif::to_sarif;
use fcdpm_lint::{Baseline, Scan};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A scratch workspace under the target dir, deleted on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(name: &str) -> Self {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
        fs::remove_dir_all(&root).ok();
        fs::create_dir_all(&root).expect("scratch root");
        Self { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("dirs");
        fs::write(path, contents).expect("write");
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.root).ok();
    }
}

#[test]
fn committed_workspace_is_clean_against_committed_baseline() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("analyze-baseline.json")).expect("baseline exists");
    let baseline = Baseline::from_json(&text).expect("baseline parses");
    let report = fcdpm_analyze::run(&root, &baseline).expect("analysis runs");
    assert!(
        report.is_clean(),
        "committed workspace must analyze clean:\n{}",
        report.to_human()
    );
    assert!(
        report.stale.is_empty(),
        "committed analyze baseline has stale entries:\n{}",
        report.to_human()
    );
}

#[test]
fn reports_are_byte_identical_across_runs() {
    let root = repo_root();
    let a = fcdpm_analyze::run(&root, &Baseline::default()).expect("first run");
    let b = fcdpm_analyze::run(&root, &Baseline::default()).expect("second run");
    assert_eq!(a.to_human(), b.to_human());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(
        to_sarif(&a, "fcdpm-analyze", &rule_catalogue()),
        to_sarif(&b, "fcdpm-analyze", &rule_catalogue())
    );
}

#[test]
fn sarif_output_carries_the_analyze_catalogue() {
    let root = repo_root();
    let report = fcdpm_analyze::run(&root, &Baseline::default()).expect("analysis runs");
    let sarif = to_sarif(&report, "fcdpm-analyze", &rule_catalogue());
    for rule in fcdpm_analyze::ALL_RULES {
        assert!(sarif.contains(rule.id()), "missing rule {}", rule.id());
    }
    assert!(sarif.contains("\"fcdpm-analyze\""));
}

#[test]
fn seeded_alpha_drift_in_efficiency_copy_is_detected() {
    let committed = fs::read_to_string(repo_root().join("crates/fuelcell/src/efficiency.rs"))
        .expect("committed efficiency.rs");
    let drifted = committed.replace("0.45", "0.46");
    assert_ne!(committed, drifted, "seeding must change the file");

    let scratch = Scratch::new("analyze-alpha-drift");
    scratch.write("crates/fuelcell/src/efficiency.rs", &drifted);
    scratch.write(
        "paper-constants.toml",
        "[efficiency]\npath = \"crates/fuelcell/src/efficiency.rs\"\nalpha = 0.45\nbeta = 0.13\nv_bus_v = 12.0\n",
    );
    let report = fcdpm_analyze::run(&scratch.root, &Baseline::default()).expect("runs");
    assert_eq!(report.findings.len(), 1, "{}", report.to_human());
    let finding = &report.findings[0];
    assert_eq!(finding.rule, AnalyzeRule::PaperConstants.id());
    assert_eq!(finding.path, "crates/fuelcell/src/efficiency.rs");
    assert!(finding.message.contains("alpha = 0.45"), "{finding}");

    // The undrifted copy is conformant.
    scratch.write("crates/fuelcell/src/efficiency.rs", &committed);
    let report = fcdpm_analyze::run(&scratch.root, &Baseline::default()).expect("runs");
    assert!(report.is_clean(), "{}", report.to_human());
}

#[test]
fn out_of_range_grid_setpoint_is_rejected() {
    let scratch = Scratch::new("analyze-bad-grid");
    // Minimal conformant manifest so the range parameters resolve.
    scratch.write(
        "crates/x/src/lib.rs",
        "pub const A: f64 = 0.45;\npub const V: f64 = 12.0;\npub const LO: f64 = 0.1;\npub const HI: f64 = 1.2;\n",
    );
    scratch.write(
        "paper-constants.toml",
        "[efficiency]\npath = \"crates/x/src/lib.rs\"\nalpha = 0.45\nv_bus_v = 12.0\n\n[load_following]\npath = \"crates/x/src/lib.rs\"\ni_f_min_a = 0.1\ni_f_max_a = 1.2\n",
    );
    scratch.write(
        "examples/good_grid.json",
        r#"{"policies": ["Conv", {"Constant": 0.6}], "workloads": [{"Experiment1": 1}]}"#,
    );
    scratch.write(
        "examples/bad_grid.json",
        r#"{"policies": [{"Constant": 1.3}], "workloads": [{"Experiment1": 1}]}"#,
    );
    let report = fcdpm_analyze::run(&scratch.root, &Baseline::default()).expect("runs");
    assert_eq!(report.findings.len(), 1, "{}", report.to_human());
    let finding = &report.findings[0];
    assert_eq!(finding.rule, AnalyzeRule::GridFeasibility.id());
    assert_eq!(finding.path, "examples/bad_grid.json");
    assert!(
        finding.message.contains("load-following range"),
        "{finding}"
    );
}

#[test]
fn mixing_behind_the_core_reexport_is_detected() {
    // `fcdpm-core` re-exports the unit newtypes; physics code importing
    // them through core instead of fcdpm-units must still be tracked.
    let scratch = Scratch::new("analyze-core-reexport");
    scratch.write(
        "crates/sim/src/lib.rs",
        "use fcdpm_core::{Amps, Seconds};\n\npub fn f(i: Amps, t: Seconds) -> f64 {\n    let mixed = i.amps() + t.seconds();\n    mixed\n}\n",
    );
    let report = fcdpm_analyze::run(&scratch.root, &Baseline::default()).expect("runs");
    assert_eq!(report.findings.len(), 1, "{}", report.to_human());
    assert_eq!(report.findings[0].rule, AnalyzeRule::UnitDataflow.id());
    assert_eq!(report.findings[0].line, 4);
}

#[test]
fn inline_suppression_silences_the_dataflow_rule() {
    let scratch = Scratch::new("analyze-suppression");
    scratch.write(
        "crates/sim/src/lib.rs",
        "pub fn f(i: Amps, t: Seconds) -> f64 {\n    // fcdpm-lint: allow(unit-dataflow)\n    let mixed = i.amps() + t.seconds();\n    mixed\n}\n",
    );
    let report = fcdpm_analyze::run(&scratch.root, &Baseline::default()).expect("runs");
    assert!(report.is_clean(), "{}", report.to_human());
    assert_eq!(report.inline_suppressed, 1);
}

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

#[test]
fn taint_fixture_pair_splits_cleanly() {
    // Fixtures masquerade as a sink file — only those can produce
    // findings.
    let bad = fixture("taint_tainted.rs");
    let findings = taint::check_file("crates/grid/src/manifest.rs", &Scan::new(&bad), None);
    assert_eq!(findings.len(), 4, "{findings:#?}");
    assert!(findings
        .iter()
        .all(|f| f.rule == AnalyzeRule::DeterminismTaint.id()));
    for carried in [
        "wall-clock time",
        "thread identity",
        "hash-order iteration",
        "channel arrival order",
    ] {
        assert!(
            findings.iter().any(|f| f.message.contains(carried)),
            "no finding carries {carried}: {findings:#?}"
        );
    }

    let ok = fixture("taint_clean.rs");
    let findings = taint::check_file("crates/grid/src/manifest.rs", &Scan::new(&ok), None);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn lock_fixture_pair_splits_cleanly() {
    let bad = fixture("locks_cyclic.rs");
    let findings = locks::check_file("crates/runner/src/pool.rs", &Scan::new(&bad));
    assert_eq!(findings.len(), 5, "{findings:#?}");
    assert!(findings
        .iter()
        .all(|f| f.rule == AnalyzeRule::LockDiscipline.id()));
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.message.contains("cycle"))
            .count(),
        2,
        "both halves of the A<->B inversion: {findings:#?}"
    );
    assert!(findings
        .iter()
        .any(|f| f.message.contains("another `deques[_]` instance")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("held across a call into `run_guarded`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("poison handling")));

    let ok = fixture("locks_acyclic.rs");
    let findings = locks::check_file("crates/runner/src/pool.rs", &Scan::new(&ok));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn digest_fixture_pair_splits_cleanly() {
    let bad = fixture("digest_unmasked.rs");
    let findings = digest::check_file("crates/grid/src/gen.rs", &bad, &Scan::new(&bad));
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings
        .iter()
        .all(|f| f.rule == AnalyzeRule::DigestStability.id()));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("neither folded")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("masks `name` which")));

    let ok = fixture("digest_masked.rs");
    let findings = digest::check_file("crates/grid/src/gen.rs", &ok, &Scan::new(&ok));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn removing_the_gridspec_name_mask_fails_digest_stability() {
    // The acceptance check runs against the *real* gen.rs, not a
    // fixture: dropping `name` from the committed mask manifest must
    // fail the pass.
    let committed = fs::read_to_string(repo_root().join("crates/grid/src/gen.rs")).expect("gen.rs");
    let clean = digest::check_file("crates/grid/src/gen.rs", &committed, &Scan::new(&committed));
    assert!(clean.is_empty(), "{clean:#?}");

    let drifted = committed.replace(r#"&["name"]"#, "&[]");
    assert_ne!(committed, drifted, "seeding must change the file");
    let findings = digest::check_file("crates/grid/src/gen.rs", &drifted, &Scan::new(&drifted));
    assert!(
        findings
            .iter()
            .any(|f| f.rule == AnalyzeRule::DigestStability.id() && f.message.contains("`name`")),
        "{findings:#?}"
    );
}

#[test]
fn seeded_new_layer_findings_are_byte_identical_across_runs() {
    // The double-run gate matters most when there *are* findings: seed
    // all three new-pass fixtures into one scratch workspace and demand
    // byte-identical JSON and SARIF across two full runs.
    let scratch = Scratch::new("analyze-new-layer-determinism");
    scratch.write("crates/grid/src/manifest.rs", &fixture("taint_tainted.rs"));
    scratch.write("crates/runner/src/pool.rs", &fixture("locks_cyclic.rs"));
    scratch.write("crates/grid/src/gen.rs", &fixture("digest_unmasked.rs"));

    let a = fcdpm_analyze::run(&scratch.root, &Baseline::default()).expect("first run");
    let b = fcdpm_analyze::run(&scratch.root, &Baseline::default()).expect("second run");
    for rule in [
        AnalyzeRule::DeterminismTaint,
        AnalyzeRule::LockDiscipline,
        AnalyzeRule::DigestStability,
    ] {
        assert!(
            a.findings.iter().any(|f| f.rule == rule.id()),
            "no {} finding: {}",
            rule.id(),
            a.to_human()
        );
    }
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(
        to_sarif(&a, "fcdpm-analyze", &rule_catalogue()),
        to_sarif(&b, "fcdpm-analyze", &rule_catalogue())
    );
}

#[test]
fn hint_fixture_pair_splits_cleanly() {
    // Fixtures masquerade as committed policy files; the pass only
    // looks at `impl FcOutputPolicy for ..` blocks.
    let unsound = fixture("hints_unsound.rs");
    let findings = hints::check_file(
        "crates/core/src/policy/overeager.rs",
        &Scan::new(&unsound),
        None,
    );
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, AnalyzeRule::HintSoundness.id());
    assert!(
        findings[0].message.contains("reads the state of charge"),
        "{}",
        findings[0]
    );
    assert!(
        findings[0].message.contains("the hint is unsound"),
        "{}",
        findings[0]
    );

    let missed = fixture("hints_missed.rs");
    let findings = hints::check_file("crates/core/src/policy/timid.rs", &Scan::new(&missed), None);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, AnalyzeRule::HintCoalescing.id());
    assert!(
        findings[0].message.contains("coalesce every chunk"),
        "{}",
        findings[0]
    );
}

#[test]
fn unbaselined_repo_findings_are_empty_now_that_every_policy_plans() {
    // The hint-coalescing worklist retired with the `begin_segment`
    // plans (ROADMAP item 1): even with no baseline at all, the tree
    // analyzes clean — and the committed analyze-baseline.json is
    // correspondingly empty.
    let report = fcdpm_analyze::run(&repo_root(), &Baseline::default()).expect("analysis runs");
    assert!(report.findings.is_empty(), "{}", report.to_human());
    let committed = std::fs::read_to_string(repo_root().join("analyze-baseline.json"))
        .expect("committed baseline");
    assert!(
        !committed.contains("hint-coalescing"),
        "analyze-baseline.json still carries retired hint-coalescing entries"
    );
}

#[test]
fn cross_file_taint_needs_summaries_and_respects_laundering() {
    let caller = fixture("interproc_caller.rs");
    // The per-function pass provably misses the cross-file flow...
    let solo = taint::check_file("crates/grid/src/manifest.rs", &Scan::new(&caller), None);
    assert!(solo.is_empty(), "{solo:#?}");

    // ...while the full engine resolves the helper and flags it.
    let scratch = Scratch::new("analyze-interproc-taint");
    scratch.write("crates/grid/src/manifest.rs", &caller);
    scratch.write(
        "crates/grid/src/util.rs",
        &fixture("interproc_helper_tainted.rs"),
    );
    let report = fcdpm_analyze::run(&scratch.root, &Baseline::default()).expect("runs");
    assert_eq!(report.findings.len(), 1, "{}", report.to_human());
    assert_eq!(report.findings[0].rule, AnalyzeRule::DeterminismTaint.id());
    assert_eq!(report.findings[0].path, "crates/grid/src/manifest.rs");
    assert!(
        report.findings[0].message.contains("wall-clock time"),
        "{}",
        report.findings[0]
    );

    // Swapping in the laundering variant of the same helper cleans the
    // caller's flow without the caller changing at all.
    scratch.write(
        "crates/grid/src/util.rs",
        &fixture("interproc_helper_laundering.rs"),
    );
    let report = fcdpm_analyze::run(&scratch.root, &Baseline::default()).expect("runs");
    assert!(report.is_clean(), "{}", report.to_human());
}

fn cache_options(scratch: &Scratch) -> EngineOptions {
    EngineOptions {
        cache_path: Some(scratch.root.join(cache::CACHE_FILE)),
        workers: Some(2),
    }
}

#[test]
fn warm_cache_reuses_every_file_and_replays_byte_identical_artifacts() {
    let scratch = Scratch::new("analyze-cache-warm");
    scratch.write("crates/grid/src/manifest.rs", &fixture("taint_tainted.rs"));
    scratch.write("crates/runner/src/pool.rs", &fixture("locks_acyclic.rs"));
    scratch.write("crates/sim/src/lib.rs", "pub fn idle() {}\n");
    let options = cache_options(&scratch);

    let a = fcdpm_analyze::run_with(&scratch.root, &Baseline::default(), &options).expect("cold");
    assert!(a.stats.cold);
    assert_eq!(a.stats.files_reused, 0);
    assert_eq!(a.stats.pass_hits, 0);
    assert_eq!(a.changed.len(), 3, "{:?}", a.changed);

    let b = fcdpm_analyze::run_with(&scratch.root, &Baseline::default(), &options).expect("warm");
    assert!(!b.stats.cold);
    assert_eq!(b.stats.files_total, 3);
    assert_eq!(b.stats.files_reused, 3);
    assert_eq!(b.stats.pass_hits, 15);
    assert_eq!(b.stats.pass_misses, 0);
    assert!(b.changed.is_empty(), "{:?}", b.changed);
    assert!(
        b.stats.human_line().contains("(100.0%)"),
        "{}",
        b.stats.human_line()
    );

    // The warm run replays the cold run's findings byte-for-byte.
    assert!(!b.report.findings.is_empty());
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(
        to_sarif(&a.report, "fcdpm-analyze", &rule_catalogue()),
        to_sarif(&b.report, "fcdpm-analyze", &rule_catalogue())
    );
}

#[test]
fn editing_one_file_invalidates_only_its_own_passes() {
    let scratch = Scratch::new("analyze-cache-edit");
    scratch.write("crates/device/src/lib.rs", "pub fn a() {}\n");
    scratch.write("crates/sim/src/lib.rs", "pub fn b() {}\n");
    scratch.write("crates/workload/src/lib.rs", "pub fn c() {}\n");
    let options = cache_options(&scratch);
    let cold =
        fcdpm_analyze::run_with(&scratch.root, &Baseline::default(), &options).expect("cold");
    assert!(cold.stats.cold);

    scratch.write("crates/sim/src/lib.rs", "pub fn b() {}\npub fn b2() {}\n");
    let warm =
        fcdpm_analyze::run_with(&scratch.root, &Baseline::default(), &options).expect("warm");
    assert_eq!(warm.stats.files_total, 3);
    assert_eq!(warm.stats.files_reused, 2);
    assert_eq!(warm.stats.pass_hits, 10);
    assert_eq!(warm.stats.pass_misses, 5);
    let changed: Vec<&str> = warm.changed.iter().map(String::as_str).collect();
    assert_eq!(changed, ["crates/sim/src/lib.rs"]);
}

#[test]
fn editing_a_helper_reruns_the_callers_interprocedural_passes() {
    let scratch = Scratch::new("analyze-cache-deps");
    scratch.write(
        "crates/grid/src/manifest.rs",
        &fixture("interproc_caller.rs"),
    );
    scratch.write(
        "crates/grid/src/util.rs",
        "pub fn gather() -> Vec<u64> {\n    Vec::new()\n}\n",
    );
    let options = cache_options(&scratch);
    let cold =
        fcdpm_analyze::run_with(&scratch.root, &Baseline::default(), &options).expect("cold");
    assert!(cold.report.is_clean(), "{}", cold.report.to_human());

    // Swap in the tainted helper: the caller's bytes are untouched, so
    // its content-keyed passes replay, but the dependency-digest
    // mismatch forces its taint/hints passes to re-run...
    scratch.write(
        "crates/grid/src/util.rs",
        &fixture("interproc_helper_tainted.rs"),
    );
    let warm =
        fcdpm_analyze::run_with(&scratch.root, &Baseline::default(), &options).expect("warm");
    assert_eq!(warm.stats.files_total, 2);
    assert_eq!(warm.stats.files_reused, 0);
    assert_eq!(warm.stats.pass_hits, 3);
    assert_eq!(warm.stats.pass_misses, 7);
    let changed: Vec<&str> = warm.changed.iter().map(String::as_str).collect();
    assert_eq!(changed, ["crates/grid/src/util.rs"]);

    // ...and the new cross-file flow surfaces on the unchanged caller.
    assert_eq!(warm.report.findings.len(), 1, "{}", warm.report.to_human());
    assert_eq!(
        warm.report.findings[0].rule,
        AnalyzeRule::DeterminismTaint.id()
    );
    assert_eq!(warm.report.findings[0].path, "crates/grid/src/manifest.rs");
}

#[test]
fn dimension_fixture_pair_splits_cleanly() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let bad = fs::read_to_string(dir.join("dimension_bad.rs")).expect("bad fixture");
    let ok = fs::read_to_string(dir.join("dimension_ok.rs")).expect("ok fixture");

    let bad_findings =
        fcdpm_analyze::dataflow::check_file("crates/sim/src/dimension_bad.rs", &Scan::new(&bad));
    // One finding per mixing-class function in the fixture.
    assert_eq!(bad_findings.len(), 5, "{bad_findings:#?}");
    assert!(bad_findings
        .iter()
        .any(|f| f.message.contains("raw f64 projections")));
    assert!(bad_findings
        .iter()
        .any(|f| f.message.contains("unit newtypes")));
    assert!(bad_findings.iter().any(|f| f.message.contains("`.0`")));

    let ok_findings =
        fcdpm_analyze::dataflow::check_file("crates/sim/src/dimension_ok.rs", &Scan::new(&ok));
    assert!(ok_findings.is_empty(), "{ok_findings:#?}");
}
