//! Paper-constants conformance.
//!
//! `paper-constants.toml` at the workspace root is the machine-readable
//! ledger of every DAC'07 constant the code hard-codes (α, β, V_F, ζ,
//! the load-following range, device presets, storage sizing). Each
//! manifest section names one source file via its `path` key; every
//! other value in the section must appear verbatim as a numeric literal
//! in that file. A constant that drifts — someone "tunes" α from 0.45 to
//! 0.46 — no longer matches its literal and becomes a finding, so paper
//! conformance is a CI property instead of a code-review hope.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use fcdpm_lint::{Finding, Scan};

use crate::toml::{self, Value};
use crate::AnalyzeRule;

/// The manifest's workspace-relative path.
pub const MANIFEST_PATH: &str = "paper-constants.toml";

/// Checks every manifest section against its target file. `root` is the
/// workspace root; `text` is the manifest contents.
#[must_use]
pub fn check(root: &Path, text: &str) -> Vec<Finding> {
    let sections = match toml::parse(text) {
        Ok(sections) => sections,
        Err(err) => {
            return vec![finding(
                MANIFEST_PATH.to_owned(),
                1,
                format!("manifest does not parse: {err}"),
            )];
        }
    };
    let mut findings = Vec::new();
    for section in &sections {
        let Some(Value::Str(path)) = section
            .pairs
            .iter()
            .find(|(key, _)| key == "path")
            .map(|(_, value)| value.clone())
        else {
            findings.push(finding(
                MANIFEST_PATH.to_owned(),
                section.line,
                format!("section [{}] has no string `path` key", section.name),
            ));
            continue;
        };
        let Ok(source) = fs::read_to_string(root.join(&path)) else {
            findings.push(finding(
                MANIFEST_PATH.to_owned(),
                section.line,
                format!("section [{}] names unreadable file `{path}`", section.name),
            ));
            continue;
        };
        let literals = literal_bits(&Scan::new(&source));
        for (key, value) in &section.pairs {
            if key == "path" {
                continue;
            }
            let expected: Vec<f64> = match value {
                Value::Num(x) => vec![*x],
                Value::Arr(xs) => xs.clone(),
                Value::Str(_) => continue,
            };
            for x in expected {
                if !literals.contains(&x.to_bits()) {
                    findings.push(finding(
                        path.clone(),
                        1,
                        format!(
                            "paper constant {}.{key} = {x:?} (from {MANIFEST_PATH}) has no matching numeric literal in this file — the paper value drifted or the manifest is stale",
                            section.name
                        ),
                    ));
                }
            }
        }
    }
    findings
}

fn finding(path: String, line: usize, message: String) -> Finding {
    Finding {
        rule: AnalyzeRule::PaperConstants.id(),
        path,
        line,
        message,
    }
}

/// All numeric literals on non-test lines of scanned Rust source, as
/// `f64` bit patterns. Test spans are excluded so a constant that
/// drifted in library code cannot hide behind an old literal in a test.
/// `_` separators and type suffixes (`1.0_f64`, `20usize`) are stripped
/// before parsing; integers widen exactly (manifest values ≪ 2^53).
fn literal_bits(scan: &Scan) -> BTreeSet<u64> {
    let cleaned = scan.cleaned.as_str();
    let bytes = cleaned.as_bytes();
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let prev_ident = i > 0 && {
            let p = bytes[i - 1] as char;
            p.is_alphanumeric() || p == '_'
        };
        if !c.is_ascii_digit() || prev_ident {
            i += 1;
            continue;
        }
        let start = i;
        i += 1;
        while i < bytes.len() {
            let d = bytes[i] as char;
            let continues = d.is_ascii_alphanumeric()
                || d == '_'
                || (d == '.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
                || ((d == '+' || d == '-')
                    && matches!(bytes[i - 1] as char, 'e' | 'E')
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit));
            if !continues {
                break;
            }
            i += 1;
        }
        let token: String = cleaned[start..i].chars().filter(|&ch| ch != '_').collect();
        // Strip a type suffix (`f64`, `u32`, `usize`...). Hex literals
        // (`0xDAC0`) fail the f64 parse below and are simply skipped —
        // no manifest constant is written in hex.
        let digits_end = token
            .char_indices()
            .find(|(pos, ch)| {
                ch.is_alphabetic() && !matches!(ch, 'e' | 'E' if token[..*pos].chars().all(|d| d.is_ascii_digit() || d == '.'))
            })
            .map_or(token.len(), |(pos, _)| pos);
        let body = &token[..digits_end];
        if scan.is_test_line(scan.line_of(start)) {
            continue;
        }
        if let Ok(x) = body.parse::<f64>() {
            if x.is_finite() {
                out.insert(x.to_bits());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_literals_with_suffixes_and_separators() {
        let bits = literal_bits(&Scan::new(
            "let a = 0.45; let b = 1_000.5f64; let c = 20usize; let d = 1.2e-3; ident2 = 7;",
        ));
        assert!(bits.contains(&0.45f64.to_bits()));
        assert!(bits.contains(&1000.5f64.to_bits()));
        assert!(bits.contains(&20f64.to_bits()));
        assert!(bits.contains(&1.2e-3f64.to_bits()));
        assert!(bits.contains(&7f64.to_bits()));
        // `2` inside `ident2` is not a literal.
        assert!(!bits.contains(&2f64.to_bits()));
    }

    #[test]
    fn drifted_constant_is_flagged_and_matching_one_is_not() {
        let dir = std::env::temp_dir().join("fcdpm-analyze-constants-test");
        let src_dir = dir.join("src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(src_dir.join("eff.rs"), "pub const ALPHA: f64 = 0.46;\n").unwrap();
        let manifest = "[efficiency]\npath = \"src/eff.rs\"\nalpha = 0.45\n";
        let got = check(&dir, manifest);
        assert_eq!(got.len(), 1, "{got:#?}");
        assert_eq!(got[0].path, "src/eff.rs");
        assert!(got[0].message.contains("alpha = 0.45"));

        fs::write(src_dir.join("eff.rs"), "pub const ALPHA: f64 = 0.45;\n").unwrap();
        assert!(check(&dir, manifest).is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_and_missing_path_key_are_findings() {
        let dir = std::env::temp_dir().join("fcdpm-analyze-constants-missing");
        fs::create_dir_all(&dir).unwrap();
        let got = check(&dir, "[a]\npath = \"src/nope.rs\"\nx = 1.0\n[b]\ny = 2.0\n");
        assert_eq!(got.len(), 2, "{got:#?}");
        assert!(got[0].message.contains("unreadable"));
        assert!(got[1].message.contains("no string `path`"));
        fs::remove_dir_all(&dir).ok();
    }
}
