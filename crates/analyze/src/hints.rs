//! Hint-soundness pass: the `steady_current` coalescing contract.
//!
//! The simulator's segment coalescing (PR 4) integrates a whole
//! segment in closed form whenever a policy's `steady_current` hint
//! promises the decide path is segment-invariant. That promise is a
//! *contract*, not a type: a `Some(..)` hint over a decide path that
//! actually varies per chunk (reads the state of charge, mutates
//! `self`, or delegates to a stateful helper) silently corrupts the
//! closed-form integration, while a `None` hint over an invariant (or
//! plannable) decide path leaves the ~12× consultation overhead the
//! ROADMAP's universal-coalescing item exists to close.
//!
//! For every `impl FcOutputPolicy for ..` block the pass classifies the
//! `segment_current` body (reads of the `soc` parameter, `self`
//! mutation via [`syntax::self_mutation`], delegation to an inner
//! policy's `.segment_current(..)`, resolved calls whose
//! [summary](crate::summaries) mutates state) and cross-checks the
//! `steady_current` override:
//!
//! * `Some(..)` hint + varying decide path → **`hint-soundness`**
//!   (error): the hint is unsound.
//! * `None` hint + invariant decide path → **`hint-coalescing`**
//!   (warning): a coalescing opportunity is being missed outright.
//! * `None` hint + decide path that varies *without* soc-gated
//!   hysteresis (no `if`/match-guard condition on `soc` feeding a
//!   `self` write) → **`hint-coalescing`** (warning): a segment-scoped
//!   plan could still coalesce it — the enumerable worklist for the
//!   ROADMAP item.
//! * A `begin_segment` override → clean regardless of the hint: the
//!   impl ships a segment-scoped plan, which is the coalescing
//!   mechanism the warnings above ask for (the simulator integrates
//!   plans in closed form whether or not `steady_current` also hints).
//! * `None` hint + soc-gated hysteresis (ASAP's recharge latch), or a
//!   hint that delegates to an inner policy's `steady_current` →
//!   clean: the hint honestly reflects a genuinely chunk-coupled (or
//!   forwarded) decide path.

use std::ops::Range;

use fcdpm_lint::{Finding, Scan};

use crate::callgraph;
use crate::summaries::SummaryContext;
use crate::syntax;
use crate::AnalyzeRule;

/// What a `steady_current` override promises.
enum Hint {
    /// Forwards to another policy's `steady_current` — judged there.
    Delegating,
    /// Returns `Some(..)` on at least one path.
    Some,
    /// Returns `None` (explicitly, or via the trait default).
    None,
}

/// One `impl FcOutputPolicy for ..` block's relevant methods.
struct PolicyImpl {
    type_name: String,
    impl_line: usize,
    steady: Option<(usize, Range<usize>)>,
    decide: Option<(usize, Range<usize>)>,
    /// A `begin_segment` override: the impl plans whole segments.
    plan: bool,
}

/// Extracts every non-test `impl FcOutputPolicy for ..` block.
fn policy_impls(scan: &Scan) -> Vec<PolicyImpl> {
    let cleaned = &scan.cleaned;
    let bodies = syntax::function_bodies(cleaned);
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = cleaned[from..].find("FcOutputPolicy for") {
        let at = from + rel;
        from = at + "FcOutputPolicy for".len();
        let impl_line = scan.line_of(at);
        if scan.is_test_line(impl_line) {
            continue;
        }
        let type_name = syntax::ident_after(cleaned, at + "FcOutputPolicy for".len()).to_owned();
        let Some(open_rel) = cleaned[at..].find('{') else {
            continue;
        };
        let open = at + open_rel;
        let Some(close) = syntax::matching(cleaned, open, b'{', b'}') else {
            continue;
        };
        let mut found = PolicyImpl {
            type_name,
            impl_line,
            steady: None,
            decide: None,
            plan: false,
        };
        for (fn_off, body) in &bodies {
            if *fn_off < open || body.end > close {
                continue;
            }
            match syntax::ident_after(cleaned, fn_off + "fn".len()) {
                "steady_current" => found.steady = Some((*fn_off, body.clone())),
                "segment_current" => found.decide = Some((*fn_off, body.clone())),
                "begin_segment" => found.plan = true,
                _ => {}
            }
        }
        out.push(found);
    }
    out
}

/// The identifier of the third value parameter of `segment_current`
/// (`phase`, `load`, **`soc`** in the trait signature) as this impl
/// spells it — `soc` reads are judged by position, not by name.
fn soc_param_name(signature: &str) -> Option<String> {
    let open = signature.find('(')?;
    let close = syntax::matching(signature, open, b'(', b')')?;
    let params: Vec<&str> = signature[open + 1..close].split(',').collect();
    // params[0] is the self receiver; value params follow.
    let soc_decl = params.get(3)?;
    let name: String = soc_decl
        .trim()
        .trim_start_matches("mut ")
        .chars()
        .take_while(|&c| syntax::is_ident_char(c))
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Is some `if`/match-guard condition in `body` a function of `soc`?
/// (Condition span: from the `if` to the nearest `{` or `=>`.)
fn soc_gated_branch(body: &str, soc: &str) -> bool {
    for off in syntax::word_occurrences(body, "if") {
        let rest = &body[off + "if".len()..];
        let stop = match (rest.find('{'), rest.find("=>")) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => continue,
        };
        if !syntax::word_occurrences(&rest[..stop], soc).is_empty() {
            return true;
        }
    }
    false
}

/// Runs the pass over one file. With a [`SummaryContext`], resolved
/// calls whose summary mutates policy state count as per-chunk-varying;
/// without one the lexical indicators alone decide.
#[must_use]
pub fn check_file(rel_path: &str, scan: &Scan, ctx: Option<&SummaryContext>) -> Vec<Finding> {
    let cleaned = &scan.cleaned;
    if !cleaned.contains("FcOutputPolicy for") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for imp in policy_impls(scan) {
        let Some((dec_off, dec_body)) = imp.decide else {
            continue; // forwarding impls without a decide path of their own
        };
        let body = &cleaned[dec_body.clone()];
        let signature = &cleaned[dec_off..dec_body.start];

        let hint = match imp.steady {
            Some((_, ref sbody)) => {
                let steady_text = &cleaned[sbody.clone()];
                if steady_text.contains(".steady_current(") {
                    Hint::Delegating
                } else if !syntax::word_occurrences(steady_text, "Some").is_empty() {
                    Hint::Some
                } else {
                    Hint::None
                }
            }
            None => Hint::None, // the trait default returns None
        };
        if matches!(hint, Hint::Delegating) {
            continue;
        }
        let line = imp
            .steady
            .as_ref()
            .map_or(imp.impl_line, |(off, _)| scan.line_of(*off));
        if scan.is_test_line(line) {
            continue;
        }

        // Per-chunk-varying indicators on the decide path.
        let soc = soc_param_name(signature);
        let reads_soc = soc
            .as_ref()
            .is_some_and(|s| !syntax::word_occurrences(body, s).is_empty());
        let mutates = syntax::self_mutation(body);
        let delegates = body.contains(".segment_current(");
        let stateful_call = ctx.is_some_and(|ctx| {
            callgraph::call_names(body).iter().any(|name| {
                ctx.resolve(rel_path, name)
                    .is_some_and(|(_, s)| s.mutates_state)
            })
        });
        let mut reasons: Vec<&str> = Vec::new();
        if reads_soc {
            reasons.push("reads the state of charge");
        }
        if mutates || stateful_call {
            reasons.push("mutates policy state between chunks");
        }
        if delegates {
            reasons.push("delegates to an inner policy's per-chunk decide path");
        }

        let name = &imp.type_name;
        match hint {
            Hint::Some if !reasons.is_empty() => findings.push(Finding {
                rule: AnalyzeRule::HintSoundness.id(),
                path: rel_path.to_owned(),
                line,
                message: format!(
                    "`{name}::steady_current` promises a coalescible Some(..) but \
                     `segment_current` {} — the closed-form segment integration \
                     would freeze state the policy varies per chunk; the hint is unsound",
                    reasons.join(" and ")
                ),
            }),
            // A begin_segment override IS the segment-scoped plan the
            // coalescing warnings below would ask for: nothing to flag.
            Hint::None if imp.plan => {}
            Hint::None if reasons.is_empty() => findings.push(Finding {
                rule: AnalyzeRule::HintCoalescing.id(),
                path: rel_path.to_owned(),
                line,
                message: format!(
                    "`{name}` hints None but its `segment_current` reads only \
                     segment-invariant inputs (phase/load/consts) — a Some(..) hint \
                     would let the simulator coalesce every chunk"
                ),
            }),
            Hint::None => {
                // Soc-gated hysteresis (a branch condition on soc feeding
                // a self write) genuinely couples chunks: None is honest.
                let hysteresis = mutates && soc.as_ref().is_some_and(|s| soc_gated_branch(body, s));
                if !hysteresis {
                    findings.push(Finding {
                        rule: AnalyzeRule::HintCoalescing.id(),
                        path: rel_path.to_owned(),
                        line,
                        message: format!(
                            "`{name}` hints None yet `segment_current` {} without \
                             soc-gated hysteresis — a segment-scoped plan could \
                             coalesce it (ROADMAP: universal coalescing)",
                            reasons.join(" and ")
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "crates/core/src/policy/fixture.rs";

    fn run_on(src: &str) -> Vec<Finding> {
        check_file(FILE, &Scan::new(src), None)
    }

    fn policy(steady_body: &str, decide_body: &str) -> String {
        format!(
            "impl FcOutputPolicy for Fix {{\n    fn segment_current(&mut self, phase: Phase, load: Amps, soc: AmpSeconds) -> Amps {{\n        {decide_body}\n    }}\n    fn steady_current(&self, phase: Phase, load: Amps) -> Option<Amps> {{\n        {steady_body}\n    }}\n}}\n"
        )
    }

    #[test]
    fn sound_some_hint_over_an_invariant_body_is_clean() {
        let src = policy("Some(self.range.max())", "self.range.max()");
        assert!(run_on(&src).is_empty(), "{:?}", run_on(&src));
    }

    #[test]
    fn some_hint_over_a_varying_body_is_unsound() {
        let src = policy(
            "Some(self.range.clamp(load))",
            "if soc < self.capacity { self.range.max() } else { self.range.clamp(load) }",
        );
        let findings = run_on(&src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "hint-soundness");
        assert!(findings[0].message.contains("state of charge"));
    }

    #[test]
    fn none_hint_over_an_invariant_body_is_a_missed_opportunity() {
        let src = policy("None", "self.range.clamp(load)");
        let findings = run_on(&src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "hint-coalescing");
        assert!(findings[0].message.contains("coalesce every chunk"));
    }

    #[test]
    fn none_hint_with_plannable_variation_lands_on_the_worklist() {
        // Mutates an EWMA every chunk but never branches on soc: a
        // segment-scoped plan could coalesce it.
        let src = policy(
            "None",
            "self.ewma = blend(self.ewma, load); self.range.clamp(load)",
        );
        let findings = run_on(&src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "hint-coalescing");
        assert!(findings[0].message.contains("segment-scoped plan"));
    }

    #[test]
    fn a_begin_segment_plan_satisfies_the_coalescing_contract() {
        // Mutates an EWMA per chunk and hints None, but plans whole
        // segments: the plan is the coalescing mechanism, so the
        // worklist warning retires.
        let src = "impl FcOutputPolicy for Fix {\n    fn segment_current(&mut self, phase: Phase, load: Amps, soc: AmpSeconds) -> Amps {\n        self.ewma = blend(self.ewma, load); self.range.clamp(load)\n    }\n    fn steady_current(&self, phase: Phase, load: Amps) -> Option<Amps> {\n        None\n    }\n    fn begin_segment(&mut self, phase: Phase, load: Amps, soc: AmpSeconds, remaining: Seconds) -> SegmentPlan {\n        SegmentPlan::Steady(self.range.clamp(load))\n    }\n}\n";
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
    }

    #[test]
    fn a_plan_in_another_impl_does_not_excuse_this_one() {
        let src = format!(
            "{}impl FcOutputPolicy for Other {{\n    fn segment_current(&mut self, phase: Phase, load: Amps, soc: AmpSeconds) -> Amps {{\n        self.range.max()\n    }}\n    fn begin_segment(&mut self, phase: Phase, load: Amps, soc: AmpSeconds, remaining: Seconds) -> SegmentPlan {{\n        SegmentPlan::Steady(self.range.max())\n    }}\n    fn steady_current(&self, phase: Phase, load: Amps) -> Option<Amps> {{\n        Some(self.range.max())\n    }}\n}}\n",
            policy(
                "None",
                "self.ewma = blend(self.ewma, load); self.range.clamp(load)",
            )
        );
        let findings = run_on(&src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "hint-coalescing");
    }

    #[test]
    fn soc_gated_hysteresis_justifies_a_none_hint() {
        let src = policy(
            "None",
            "if soc < self.capacity * 0.5 { self.recharging = true; } if self.recharging { self.range.max() } else { self.range.clamp(load) }",
        );
        assert!(run_on(&src).is_empty(), "{:?}", run_on(&src));
    }

    #[test]
    fn delegating_hints_and_test_impls_are_skipped() {
        let src = "impl FcOutputPolicy for Wrap {\n    fn segment_current(&mut self, phase: Phase, load: Amps, soc: AmpSeconds) -> Amps {\n        self.inner.segment_current(phase, load, soc)\n    }\n    fn steady_current(&self, phase: Phase, load: Amps) -> Option<Amps> {\n        self.inner.steady_current(phase, load)\n    }\n}\n";
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
        let test_src = format!(
            "#[cfg(test)]\nmod tests {{\n{}\n}}\n",
            policy("None", "self.range.clamp(load)")
        );
        assert!(run_on(&test_src).is_empty());
    }

    #[test]
    fn a_missing_steady_override_counts_as_a_none_hint() {
        let src = "impl FcOutputPolicy for Bare {\n    fn segment_current(&mut self, phase: Phase, load: Amps, soc: AmpSeconds) -> Amps {\n        self.range.clamp(load)\n    }\n}\n";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "hint-coalescing");
        assert_eq!(findings[0].line, 1);
    }
}
