//! Per-function summaries over the call graph, computed to a fixpoint.
//!
//! Each [`FnDef`](crate::callgraph::FnDef) gets a [`FnSummary`] of the
//! effects interprocedural passes care about:
//!
//! * `returns_taint` — the function's return value carries a
//!   nondeterminism kind (it reads a taint source, or calls a function
//!   that returns one, and nothing in its own body launders);
//! * `launders` — the body contains an explicit sort/`BTree*` launder,
//!   so its output is deterministic regardless of its inputs;
//! * `mutates_state` — the body writes `self` state (directly or via a
//!   resolved call), which the hint-soundness pass reads as
//!   "per-chunk-varying";
//! * `locks` — the lock classes the function acquires, transitively
//!   through resolved calls, so the lock-discipline pass sees a lock
//!   hidden behind a helper.
//!
//! Effects propagate caller-ward over *resolved* edges only (see
//! [`CallGraph::resolve`](crate::callgraph::CallGraph::resolve)): an
//! unresolvable call contributes nothing, keeping the passes exactly as
//! conservative as their old per-function selves on code the resolver
//! cannot see through. The fixpoint folds transitive effects into every
//! direct callee's summary, which is what lets the cache key an
//! interprocedural pass on just the *direct* dependency digests.

use std::collections::BTreeMap;

use fcdpm_runner::spec::fnv1a;

use crate::callgraph::{CallGraph, FnDef};
use crate::locks;
use crate::taint;

/// The effect summary of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Nondeterminism kind the return value carries, if any.
    pub returns_taint: Option<&'static str>,
    /// The body launders its data (sort/`BTree*`).
    pub launders: bool,
    /// The function mutates `self` state (directly or transitively).
    pub mutates_state: bool,
    /// Lock classes acquired, transitively, sorted and deduplicated.
    pub locks: Vec<String>,
}

impl FnSummary {
    /// FNV-1a digest of the canonical rendering — the unit the cache
    /// folds into a file's dependency digest.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let canonical = format!(
            "taint={};launders={};mutates={};locks={}",
            self.returns_taint.unwrap_or("-"),
            u8::from(self.launders),
            u8::from(self.mutates_state),
            self.locks.join(",")
        );
        fnv1a(canonical.as_bytes())
    }
}

/// Intrinsic (pre-fixpoint) facts of one definition.
fn intrinsic(def: &FnDef) -> FnSummary {
    let launders = taint::is_laundering(&def.body);
    let returns_taint = if launders || !def.has_return {
        None
    } else {
        taint::source_kinds(&def.body).first().copied()
    };
    let mut lock_classes: Vec<String> = locks::acquisitions(&def.body)
        .into_iter()
        .map(|a| a.class)
        .collect();
    lock_classes.sort();
    lock_classes.dedup();
    FnSummary {
        returns_taint,
        launders,
        mutates_state: crate::syntax::self_mutation(&def.body),
        locks: lock_classes,
    }
}

/// The call graph plus every function's fixpoint summary — the context
/// handed to the interprocedural passes.
#[derive(Debug, Default)]
pub struct SummaryContext {
    graph: CallGraph,
    summaries: Vec<FnSummary>,
}

impl SummaryContext {
    /// Computes intrinsic facts and propagates them caller-ward over
    /// resolved edges until nothing changes.
    #[must_use]
    pub fn build(graph: CallGraph) -> Self {
        let mut summaries: Vec<FnSummary> = graph.defs.iter().map(intrinsic).collect();
        loop {
            let mut changed = false;
            for i in 0..graph.defs.len() {
                let def = &graph.defs[i];
                for callee in &def.calls {
                    let Some(j) = graph.resolve(&def.file, callee) else {
                        continue;
                    };
                    if i == j {
                        continue;
                    }
                    let callee_summary = summaries[j].clone();
                    let mine = &mut summaries[i];
                    if let Some(kind) = callee_summary.returns_taint {
                        if def.has_return && !mine.launders && mine.returns_taint.is_none() {
                            mine.returns_taint = Some(kind);
                            changed = true;
                        }
                    }
                    if callee_summary.mutates_state && !mine.mutates_state {
                        mine.mutates_state = true;
                        changed = true;
                    }
                    for class in callee_summary.locks {
                        if !mine.locks.contains(&class) {
                            mine.locks.push(class);
                            mine.locks.sort();
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Self { graph, summaries }
    }

    /// Resolves a call made from `caller_file` and returns the callee's
    /// definition and summary.
    #[must_use]
    pub fn resolve(&self, caller_file: &str, name: &str) -> Option<(&FnDef, &FnSummary)> {
        let i = self.graph.resolve(caller_file, name)?;
        Some((&self.graph.defs[i], &self.summaries[i]))
    }

    /// The interprocedural dependency list of `file`: for every call
    /// made by one of its functions that resolves *outside* the file,
    /// the callee's stable key and summary digest, sorted and
    /// deduplicated. Two runs agree on this list iff every summary the
    /// file's passes consulted is unchanged — the cache's validity
    /// condition for interprocedural results.
    #[must_use]
    pub fn file_deps(&self, file: &str) -> Vec<(String, u64)> {
        let mut deps: BTreeMap<String, u64> = BTreeMap::new();
        for def in self.graph.defs.iter().filter(|d| d.file == file) {
            for callee in &def.calls {
                let Some(i) = self.graph.resolve(file, callee) else {
                    continue;
                };
                if self.graph.defs[i].file == file {
                    continue; // same-file effects are covered by the content digest
                }
                deps.insert(self.graph.key_of(i), self.summaries[i].digest());
            }
        }
        deps.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::function_defs;
    use fcdpm_lint::Scan;

    fn context(files: &[(&str, &str)]) -> SummaryContext {
        let mut defs = Vec::new();
        for (rel, src) in files {
            defs.extend(function_defs(rel, &Scan::new(src)));
        }
        SummaryContext::build(CallGraph::from_defs(defs))
    }

    #[test]
    fn wall_clock_reads_propagate_to_callers_with_returns() {
        let ctx = context(&[(
            "crates/a/src/lib.rs",
            "fn stamp() -> u64 { let t = Instant::now(); pack(t) }\n\
             fn wrapped() -> u64 { stamp() + 1 }\n\
             fn consumed(x: u64) { record(stamp(), x); }\n",
        )]);
        let (_, s) = ctx.resolve("crates/a/src/lib.rs", "stamp").unwrap();
        assert_eq!(s.returns_taint, Some("wall-clock time"));
        let (_, w) = ctx.resolve("crates/a/src/lib.rs", "wrapped").unwrap();
        assert_eq!(w.returns_taint, Some("wall-clock time"));
        // No return type — nothing flows out.
        let (_, c) = ctx.resolve("crates/a/src/lib.rs", "consumed").unwrap();
        assert_eq!(c.returns_taint, None);
    }

    #[test]
    fn laundering_bodies_cut_the_propagation() {
        let ctx = context(&[(
            "crates/a/src/lib.rs",
            "fn arrivals() -> Vec<u64> { rx.recv().into_iter().collect() }\n\
             fn ordered() -> Vec<u64> { let mut v = arrivals(); v.sort(); v }\n",
        )]);
        let (_, s) = ctx.resolve("crates/a/src/lib.rs", "ordered").unwrap();
        assert!(s.launders);
        assert_eq!(s.returns_taint, None);
    }

    #[test]
    fn lock_classes_and_self_mutation_cross_resolved_edges() {
        let ctx = context(&[
            (
                "crates/a/src/lib.rs",
                "fn outer(&mut self) { self.bump(); grab(); }\n",
            ),
            (
                "crates/a/src/util.rs",
                "fn bump(&mut self) { self.n += 1; }\n\
                 fn grab() { let g = state.lock().unwrap_or_else(PoisonError::into_inner); g.len(); }\n",
            ),
        ]);
        let (_, s) = ctx.resolve("crates/a/src/other.rs", "outer").unwrap();
        assert!(s.mutates_state);
        assert_eq!(s.locks, vec!["state".to_owned()]);
    }

    #[test]
    fn file_deps_list_only_cross_file_resolutions() {
        let ctx = context(&[
            (
                "crates/a/src/lib.rs",
                "fn top() -> u64 { local() + remote() }\nfn local() -> u64 { 1 }\n",
            ),
            ("crates/a/src/util.rs", "fn remote() -> u64 { 2 }\n"),
        ]);
        let deps = ctx.file_deps("crates/a/src/lib.rs");
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].0, "crates/a/src/util.rs::remote#0");
        // Digests are stable across rebuilds of the same tree.
        let again = context(&[
            (
                "crates/a/src/lib.rs",
                "fn top() -> u64 { local() + remote() }\nfn local() -> u64 { 1 }\n",
            ),
            ("crates/a/src/util.rs", "fn remote() -> u64 { 2 }\n"),
        ]);
        assert_eq!(deps, again.file_deps("crates/a/src/lib.rs"));
    }
}
