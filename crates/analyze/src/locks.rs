//! Lock-discipline pass: static acquisition-order graph, guards held
//! across job closures, and poison-handling consistency.
//!
//! The work-stealing pool (`runner/pool.rs`) and the shard engine
//! (`grid/engine.rs`) are the only places the workspace holds locks,
//! and their correctness argument is a *discipline*, not a type: every
//! deque guard is a statement-scoped temporary, jobs never run under a
//! lock, and poisoning is tolerated through the `lock_deque` idiom
//! (`.lock().unwrap_or_else(PoisonError::into_inner)`). This pass
//! checks the discipline statically, workspace-wide:
//!
//! * every `Mutex` acquisition site (`.lock()` receivers and
//!   `lock_deque(&…)` calls) is assigned a lock *class* — the receiver
//!   text with index expressions collapsed, so `deques[worker]` and
//!   `deques[victim]` share the class `deques[_]`;
//! * while a `let`-bound guard is held, each further acquisition adds a
//!   `held → acquired` edge; any edge that closes a cycle (including a
//!   self-edge on an indexed class: two instances of the same lock
//!   family held at once) is a potential deadlock;
//! * a call into job-closure machinery (`job(…)`, `run_guarded(…)`,
//!   `catch_unwind(…)`, `execute(…)`, `visit(…)`) while a guard is held
//!   means a panicking job poisons the lock — flagged;
//! * in a file that uses the poison-tolerant idiom, any raw
//!   `.lock().unwrap()` / `.lock().expect(…)` is an inconsistent
//!   poison policy — one panicked worker would cascade.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

use fcdpm_lint::{Finding, Scan};

use crate::callgraph;
use crate::summaries::SummaryContext;
use crate::syntax;
use crate::AnalyzeRule;

/// Callees that run (or directly wrap) user job closures: holding any
/// lock across them risks poisoning on job panic.
const CLOSURE_CALLS: [&str; 5] = ["job", "run_guarded", "catch_unwind", "execute", "visit"];

/// One `let`-bound guard currently in scope.
struct HeldGuard {
    name: String,
    class: String,
    depth: u32,
}

/// Workspace-wide acquisition-order graph, fed one file at a time (the
/// same shape as [`SymbolGraph`](crate::SymbolGraph) + `check_layering`).
#[derive(Debug, Default)]
pub struct LockGraph {
    /// `(held, acquired) -> first witness (path, line)`. Edges whose
    /// witness line carries an inline suppression are never recorded.
    edges: BTreeMap<(String, String), (String, usize)>,
}

/// An acquisition site inside one segment.
pub(crate) struct Acquisition {
    pub(crate) offset: usize,
    pub(crate) class: String,
    /// Byte just past the full acquisition expression (after any
    /// poison-adapter suffix), for guard-binding detection.
    pub(crate) end: usize,
}

/// Finds every acquisition in `segment` (a `lock_deque(&…)` call or a
/// `recv.lock()` chain), in offset order.
pub(crate) fn acquisitions(segment: &str) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for off in syntax::word_occurrences(segment, "lock_deque") {
        let open = off + "lock_deque".len();
        if segment.as_bytes().get(open) != Some(&b'(') {
            continue;
        }
        let Some(close) = syntax::matching(segment, open, b'(', b')') else {
            continue;
        };
        out.push(Acquisition {
            offset: off,
            class: syntax::normalize_lock_class(&segment[open + 1..close]),
            end: close + 1,
        });
    }
    let mut from = 0usize;
    while let Some(rel) = segment[from..].find(".lock()") {
        let at = from + rel;
        from = at + ".lock()".len();
        let Some(recv) = syntax::receiver_before(segment, at) else {
            continue;
        };
        // Skip the poison-adapter suffix so `m.lock().unwrap()` binds a
        // guard, while `m.lock().unwrap().len()` stays a temporary.
        let mut end = at + ".lock()".len();
        for adapter in [".unwrap()", ".unwrap_or_else(", ".expect("] {
            if segment[end..].starts_with(adapter) {
                end += adapter.len();
                if adapter.ends_with('(') {
                    if let Some(close) = syntax::matching(segment, end - 1, b'(', b')') {
                        end = close + 1;
                    }
                }
                break;
            }
        }
        out.push(Acquisition {
            offset: at - recv.len(),
            class: syntax::normalize_lock_class(recv),
            end,
        });
    }
    out.sort_by_key(|a| a.offset);
    out
}

/// Brace depth before each byte of `body` (`depths[i]` = depth entering
/// byte `i`, relative to the function body).
fn depth_map(body: &str) -> Vec<u32> {
    let mut depths = Vec::with_capacity(body.len() + 1);
    let mut depth = 0u32;
    depths.push(depth);
    for b in body.bytes() {
        match b {
            b'{' => depth += 1,
            b'}' => depth = depth.saturating_sub(1),
            _ => {}
        }
        depths.push(depth);
    }
    depths
}

impl LockGraph {
    /// Scans one file: records acquisition-order edges into the graph
    /// and returns the file-local findings (guard-across-closure-call,
    /// poison inconsistency). Inline-suppressed lines are skipped here;
    /// the caller never needs to re-filter. With a [`SummaryContext`],
    /// a resolved call into a function that (transitively) acquires
    /// locks, made while a guard is held, orders `held → callee-lock`
    /// exactly like an inline acquisition.
    pub fn add_file(
        &mut self,
        rel_path: &str,
        scan: &Scan,
        ctx: Option<&SummaryContext>,
    ) -> Vec<Finding> {
        let cleaned = &scan.cleaned;
        if !cleaned.contains(".lock()") && !cleaned.contains("lock_deque") {
            return Vec::new();
        }
        let mut findings = Vec::new();
        let rule = AnalyzeRule::LockDiscipline.id();
        let reportable = |line: usize| !scan.is_test_line(line) && !scan.is_suppressed(rule, line);

        // Poison-policy consistency: raw lock().unwrap()/expect() in a
        // file that elsewhere tolerates poisoning.
        if cleaned.contains("PoisonError") {
            for needle in [".lock().unwrap()", ".lock().expect("] {
                for off in syntax::word_occurrences(cleaned, needle) {
                    let line = scan.line_of(off);
                    if reportable(line) {
                        findings.push(Finding {
                            rule,
                            path: rel_path.to_owned(),
                            line,
                            message: format!(
                                "inconsistent poison handling: `{}` alongside the \
                                 poison-tolerant `lock_deque` idiom — one panicked \
                                 worker would cascade",
                                needle.trim_start_matches('.').trim_end_matches('(')
                            ),
                        });
                    }
                }
            }
        }

        for (fn_off, body_range) in syntax::function_bodies(cleaned) {
            if scan.is_test_line(scan.line_of(fn_off)) {
                continue;
            }
            self.walk_body(rel_path, scan, &body_range, ctx, &mut findings, &reportable);
        }
        findings
    }

    fn walk_body(
        &mut self,
        rel_path: &str,
        scan: &Scan,
        body_range: &Range<usize>,
        ctx: Option<&SummaryContext>,
        findings: &mut Vec<Finding>,
        reportable: &dyn Fn(usize) -> bool,
    ) {
        let cleaned = &scan.cleaned;
        let body = &cleaned[body_range.clone()];
        let depths = depth_map(body);
        let rule = AnalyzeRule::LockDiscipline.id();
        let mut held: Vec<HeldGuard> = Vec::new();

        for (seg_start, seg_range) in syntax::segments(cleaned, body_range) {
            let segment = &cleaned[seg_range.clone()];
            let seg_rel = seg_start - body_range.start;
            let acqs = acquisitions(segment);

            // Scope exits inside this segment release guards first —
            // a `}` before a call means the guard is already gone.
            let mut events: Vec<(usize, usize)> = Vec::new(); // (offset, acq index or MAX for brace)
            for (i, b) in segment.bytes().enumerate() {
                if b == b'}' {
                    events.push((i, usize::MAX));
                }
            }
            for (i, acq) in acqs.iter().enumerate() {
                events.push((acq.offset, i));
            }
            events.sort_unstable();

            for (off, what) in &events {
                if *what == usize::MAX {
                    let new_depth = depths[seg_rel + off + 1];
                    held.retain(|g| g.depth <= new_depth);
                } else {
                    let acq = &acqs[*what];
                    let line = scan.line_of(seg_start + acq.offset);
                    for guard in &held {
                        if !reportable(line) {
                            continue;
                        }
                        self.edges
                            .entry((guard.class.clone(), acq.class.clone()))
                            .or_insert_with(|| (rel_path.to_owned(), line));
                    }
                }
            }

            // Two acquisitions alive inside one statement order
            // left-to-right as well.
            for pair in acqs.windows(2) {
                let line = scan.line_of(seg_start + pair[1].offset);
                if reportable(line) {
                    self.edges
                        .entry((pair[0].class.clone(), pair[1].class.clone()))
                        .or_insert_with(|| (rel_path.to_owned(), line));
                }
            }

            // A resolved call into a function whose summary acquires
            // locks, with a guard held: the hidden acquisition orders
            // held → callee-lock like an inline one would.
            if !held.is_empty() {
                if let Some(ctx) = ctx {
                    for (off, name) in callgraph::call_sites(segment) {
                        if name == "lock_deque" {
                            continue; // modelled precisely by acquisitions()
                        }
                        let Some((_, summary)) = ctx.resolve(rel_path, &name) else {
                            continue;
                        };
                        let line = scan.line_of(seg_start + off);
                        if !reportable(line) {
                            continue;
                        }
                        for class in &summary.locks {
                            for guard in &held {
                                self.edges
                                    .entry((guard.class.clone(), class.clone()))
                                    .or_insert_with(|| (rel_path.to_owned(), line));
                            }
                        }
                    }
                }
            }

            // A call into job-closure machinery with any guard held.
            if !held.is_empty() {
                for callee in CLOSURE_CALLS {
                    for off in syntax::word_occurrences(segment, callee) {
                        if segment.as_bytes().get(off + callee.len()) != Some(&b'(') {
                            continue;
                        }
                        let line = scan.line_of(seg_start + off);
                        if reportable(line) {
                            findings.push(Finding {
                                rule,
                                path: rel_path.to_owned(),
                                line,
                                message: format!(
                                    "guard on `{}` is held across a call into `{callee}`; \
                                     a panicking job would poison the lock",
                                    held[held.len() - 1].class
                                ),
                            });
                        }
                    }
                }
            }

            // `drop(guard)` releases by name.
            for off in syntax::word_occurrences(segment, "drop") {
                if segment.as_bytes().get(off + "drop".len()) == Some(&b'(') {
                    let arg_start = off + "drop".len() + 1;
                    if let Some(close) = syntax::matching(segment, off + "drop".len(), b'(', b')') {
                        let name = segment[arg_start..close].trim();
                        held.retain(|g| g.name != name);
                    }
                }
            }

            // Guard binding: `let g = <acquisition>;` where the whole
            // value is the guard (nothing consumes it afterwards).
            if let Some(let_off) = syntax::word_occurrences(segment, "let").first().copied() {
                let after_let = &segment[let_off..];
                if let Some(eq) = after_let.find('=') {
                    let binder: String = after_let["let".len()..eq]
                        .trim()
                        .trim_start_matches("mut ")
                        .trim()
                        .chars()
                        .take_while(|&c| syntax::is_ident_char(c))
                        .collect();
                    if !binder.is_empty() {
                        for acq in &acqs {
                            if acq.offset > let_off && segment[acq.end..].trim().is_empty() {
                                held.push(HeldGuard {
                                    name: binder.clone(),
                                    class: acq.class.clone(),
                                    depth: depths[seg_rel + acq.offset.min(body.len())],
                                });
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Edges that close a cycle in the acquisition-order graph, one
    /// finding per witnessing edge (both halves of an A↔B inversion are
    /// implicated at their own lines).
    #[must_use]
    pub fn cycle_findings(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        for ((from, to), (path, line)) in &self.edges {
            if self.reaches(to, from) {
                let message = if from == to {
                    format!(
                        "`{from}` is acquired while another `{to}` instance is already \
                         held — two workers doing this concurrently deadlock"
                    )
                } else {
                    format!(
                        "`{from}` is held while acquiring `{to}`, closing an \
                         acquisition-order cycle (potential deadlock)"
                    )
                };
                findings.push(Finding {
                    rule: AnalyzeRule::LockDiscipline.id(),
                    path: path.clone(),
                    line: *line,
                    message,
                });
            }
        }
        findings
    }

    /// Is `target` reachable from `start` over recorded edges?
    fn reaches(&self, start: &str, target: &str) -> bool {
        let mut queue: VecDeque<&str> = VecDeque::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            if node == target {
                return true;
            }
            for (from, to) in self.edges.keys() {
                if from == node && seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        false
    }
}

/// Runs the pass over a single file in isolation, without summaries
/// (fixture tests; the workspace run feeds every file through one
/// shared [`LockGraph`] with a [`SummaryContext`]).
#[must_use]
pub fn check_file(rel_path: &str, scan: &Scan) -> Vec<Finding> {
    let mut graph = LockGraph::default();
    let mut findings = graph.add_file(rel_path, scan, None);
    findings.extend(graph.cycle_findings());
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        check_file("crates/runner/src/pool.rs", &Scan::new(src))
    }

    #[test]
    fn statement_temporaries_build_no_edges() {
        let src = "fn steal() {\n    let mut next = lock_deque(&deques[worker]).pop_front();\n    let n = lock_deque(&deques[victim]).pop_back();\n}\n";
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
    }

    #[test]
    fn opposite_order_held_guards_are_a_cycle() {
        let src = "\
fn ab() {\n    let a = first.lock().unwrap_or_else(PoisonError::into_inner);\n    let b = second.lock().unwrap_or_else(PoisonError::into_inner);\n    a.push(b.len());\n}\n\
fn ba() {\n    let b = second.lock().unwrap_or_else(PoisonError::into_inner);\n    let a = first.lock().unwrap_or_else(PoisonError::into_inner);\n    b.push(a.len());\n}\n";
        let findings = run_on(src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.message.contains("cycle")));
    }

    #[test]
    fn two_instances_of_an_indexed_family_are_a_self_cycle() {
        let src = "fn f() {\n    let a = lock_deque(&deques[i]);\n    let b = lock_deque(&deques[j]);\n    swap(a, b);\n}\n";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("deadlock"));
    }

    #[test]
    fn guard_dropped_before_second_acquisition_is_clean() {
        let src = "fn f() {\n    let a = lock_deque(&deques[i]);\n    let n = a.len();\n    drop(a);\n    let b = lock_deque(&deques[j]);\n    b.push_back(n);\n}\n";
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
    }

    #[test]
    fn block_scoped_guard_releases_at_brace() {
        let src = "fn f() {\n    if go {\n        let a = lock_deque(&deques[i]);\n        a.len();\n    }\n    let b = lock_deque(&deques[j]);\n    b.len();\n}\n";
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
    }

    #[test]
    fn job_call_under_guard_is_flagged() {
        let src = "fn f() {\n    let guard = lock_deque(&deques[w]);\n    let outcome = run_guarded(job, timeout);\n}\n";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("run_guarded"));
        assert!(findings[0].message.contains("poison"));
    }

    #[test]
    fn hidden_helper_lock_under_a_guard_orders_via_the_summary() {
        use crate::callgraph::{function_defs, CallGraph};
        use crate::summaries::SummaryContext;

        let helper = "fn grab_second() -> usize {\n    let g = second.lock().unwrap_or_else(PoisonError::into_inner);\n    g.len()\n}\n";
        let caller = "fn ab() {\n    let a = first.lock().unwrap_or_else(PoisonError::into_inner);\n    let n = grab_second();\n    a.push(n);\n}\nfn ba() {\n    let b = second.lock().unwrap_or_else(PoisonError::into_inner);\n    let a = first.lock().unwrap_or_else(PoisonError::into_inner);\n    b.push(a.len());\n}\n";
        let caller_scan = Scan::new(caller);
        let helper_scan = Scan::new(helper);

        // Without summaries the inversion is invisible (ab's second
        // acquisition hides inside the helper).
        let mut blind = LockGraph::default();
        let mut blind_findings = blind.add_file("crates/runner/src/pool.rs", &caller_scan, None);
        blind_findings.extend(blind.add_file("crates/runner/src/util.rs", &helper_scan, None));
        blind_findings.extend(blind.cycle_findings());
        assert!(blind_findings.is_empty(), "{blind_findings:?}");

        let mut defs = function_defs("crates/runner/src/pool.rs", &caller_scan);
        defs.extend(function_defs("crates/runner/src/util.rs", &helper_scan));
        let ctx = SummaryContext::build(CallGraph::from_defs(defs));
        let mut graph = LockGraph::default();
        let mut findings = graph.add_file("crates/runner/src/pool.rs", &caller_scan, Some(&ctx));
        findings.extend(graph.add_file("crates/runner/src/util.rs", &helper_scan, Some(&ctx)));
        findings.extend(graph.cycle_findings());
        assert!(
            findings.iter().any(|f| f.message.contains("cycle")),
            "{findings:?}"
        );
    }

    #[test]
    fn raw_unwrap_next_to_tolerant_idiom_is_flagged() {
        let src = "fn a() { let g = m.lock().unwrap_or_else(PoisonError::into_inner); g.len(); }\nfn b() { let n = m.lock().unwrap().len(); }\n";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("poison handling"));
        assert_eq!(findings[0].line, 2);
    }
}
