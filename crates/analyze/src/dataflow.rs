//! Unit-dimension dataflow through function bodies.
//!
//! The lint's `unit-safety` rule checks *signatures*; this pass follows
//! the quantities through `let`-bindings and arithmetic, so dimension
//! errors hidden inside a body are caught too:
//!
//! * adding or subtracting raw `f64` projections of *distinct*
//!   dimensions (`i.amps() + t.seconds()`),
//! * mixing distinct unit newtypes under `+`/`-`,
//! * `.0` tuple projections of a unit newtype in physics code (the
//!   named accessor keeps the dimension visible; `.0` erases it).
//!
//! The lattice is deliberately conservative: multiplication or division
//! involving any raw projection yields `Unknown`, because a raw factor
//! may legitimately carry inverse units (a fitted slope in 1/A, say).
//! Every guardrail loses coverage, never soundness of reported
//! findings — anything flagged is a definite dimensional mix.

use fcdpm_lint::{Finding, Scan};

use crate::AnalyzeRule;

/// A physical dimension tracked by the pass (one per `fcdpm-units`
/// newtype the workspace passes around).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// `Amps`.
    Amps,
    /// `Volts`.
    Volts,
    /// `Watts`.
    Watts,
    /// `Seconds`.
    Seconds,
    /// `Charge` (A·s).
    Charge,
    /// `Energy` (J).
    Energy,
    /// `Efficiency` (dimensionless but newtyped).
    Efficiency,
}

impl UnitKind {
    fn from_type_name(name: &str) -> Option<Self> {
        Some(match name {
            "Amps" => UnitKind::Amps,
            "Volts" => UnitKind::Volts,
            "Watts" => UnitKind::Watts,
            "Seconds" => UnitKind::Seconds,
            "Charge" => UnitKind::Charge,
            "Energy" => UnitKind::Energy,
            "Efficiency" => UnitKind::Efficiency,
            _ => return None,
        })
    }

    /// The dimension a projection method's raw `f64` result carries.
    fn from_projection(method: &str) -> Option<Self> {
        Some(match method {
            "amps" | "milliamps" => UnitKind::Amps,
            "volts" => UnitKind::Volts,
            "watts" => UnitKind::Watts,
            "seconds" | "minutes" => UnitKind::Seconds,
            "amp_seconds" | "milliamp_minutes" | "amp_hours" => UnitKind::Charge,
            "joules" => UnitKind::Energy,
            "value" => UnitKind::Efficiency,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            UnitKind::Amps => "Amps",
            UnitKind::Volts => "Volts",
            UnitKind::Watts => "Watts",
            UnitKind::Seconds => "Seconds",
            UnitKind::Charge => "Charge",
            UnitKind::Energy => "Energy",
            UnitKind::Efficiency => "Efficiency",
        }
    }
}

/// The abstract type of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// A unit newtype value.
    Unit(UnitKind),
    /// A raw `f64` known to carry this dimension (a projection result).
    Raw(UnitKind),
    /// A dimensionless number (literal or ratio of equal dimensions).
    Scalar,
    /// Anything the pass cannot or will not track.
    Unknown,
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(String),
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Dot,
    PathSep,
    Comma,
    Colon,
    Semi,
    Eq,
    Amp,
    /// Anything else — aborts the surrounding expression conservatively.
    Other(char),
}

/// One token plus its byte offset in the cleaned source.
#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    at: usize,
}

fn tokenize(cleaned: &str) -> Vec<Spanned> {
    let bytes = cleaned.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let at = i;
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() {
                let d = bytes[j] as char;
                let continues = d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.' && bytes.get(j + 1).is_some_and(u8::is_ascii_digit))
                    || ((d == '+' || d == '-')
                        && matches!(bytes[j - 1] as char, 'e' | 'E')
                        && bytes.get(j + 1).is_some_and(u8::is_ascii_digit));
                if !continues {
                    break;
                }
                j += 1;
            }
            out.push(Spanned {
                tok: Tok::Number(cleaned[i..j].to_owned()),
                at,
            });
            i = j;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            out.push(Spanned {
                tok: Tok::Ident(cleaned[i..j].to_owned()),
                at,
            });
            i = j;
            continue;
        }
        if c == ':' && bytes.get(i + 1) == Some(&b':') {
            out.push(Spanned {
                tok: Tok::PathSep,
                at,
            });
            i += 2;
            continue;
        }
        let tok = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '+' => Tok::Plus,
            '-' => Tok::Minus,
            '*' => Tok::Star,
            '/' => Tok::Slash,
            '.' => Tok::Dot,
            ',' => Tok::Comma,
            ':' => Tok::Colon,
            ';' => Tok::Semi,
            '=' => Tok::Eq,
            '&' => Tok::Amp,
            other => Tok::Other(other),
        };
        out.push(Spanned { tok, at });
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// Lattice operations
// ---------------------------------------------------------------------

/// `Unit(a) op Unit(b)` for `*` and `/` — the operator impls that exist
/// in `crates/units/src/electrical.rs`, mirrored.
fn unit_algebra(op: Tok, a: UnitKind, b: UnitKind) -> Option<UnitKind> {
    use UnitKind::{Amps, Charge, Energy, Seconds, Volts, Watts};
    match op {
        Tok::Star => Some(match (a, b) {
            (Volts, Amps) | (Amps, Volts) => Watts,
            (Amps, Seconds) | (Seconds, Amps) => Charge,
            (Watts, Seconds) | (Seconds, Watts) => Energy,
            _ => return None,
        }),
        Tok::Slash => Some(match (a, b) {
            (Watts, Volts) => Amps,
            (Watts, Amps) => Volts,
            (Charge, Seconds) => Amps,
            (Charge, Amps) => Seconds,
            (Energy, Seconds) => Watts,
            (Energy, Watts) => Seconds,
            _ => return None,
        }),
        _ => None,
    }
}

/// Methods that return the receiver's own type.
const PRESERVING_METHODS: [&str; 7] = ["min", "max", "clamp", "abs", "max_zero", "floor", "ceil"];

// ---------------------------------------------------------------------
// The per-file pass
// ---------------------------------------------------------------------

struct Pass<'a> {
    scan: &'a Scan,
    rel_path: &'a str,
    toks: Vec<Spanned>,
    pos: usize,
    scope: std::collections::BTreeMap<String, Ty>,
    findings: Vec<Finding>,
}

impl<'a> Pass<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek_at(&self, ahead: usize) -> Option<&Tok> {
        self.toks.get(self.pos + ahead).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let tok = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        tok
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |s| s.at)
    }

    fn line_here(&self) -> usize {
        self.scan.line_of(self.offset())
    }

    fn report(&mut self, line: usize, message: String) {
        if self.scan.is_test_line(line) {
            return;
        }
        self.findings.push(Finding {
            rule: AnalyzeRule::UnitDataflow.id(),
            path: self.rel_path.to_owned(),
            line,
            message,
        });
    }

    /// Skips ahead until just past the next token equal to `needle` at
    /// paren depth zero relative to the current position.
    fn skip_past(&mut self, needle: &Tok) {
        let mut depth = 0i32;
        while let Some(tok) = self.bump() {
            match tok {
                Tok::LParen => depth += 1,
                Tok::RParen => depth -= 1,
                ref t if t == needle && depth <= 0 => return,
                _ => {}
            }
        }
    }

    /// Drives the statement-level walk: function headers bind typed
    /// parameters (resetting the scope — bindings do not flow across
    /// function boundaries), `let` statements bind and analyze.
    fn run(&mut self) {
        while self.pos < self.toks.len() {
            match self.peek() {
                Some(Tok::Ident(word)) if word == "fn" => {
                    self.pos += 1;
                    self.enter_fn();
                }
                Some(Tok::Ident(word)) if word == "let" => {
                    self.pos += 1;
                    self.let_statement();
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Parses `fn name(params...)`, binding unit-typed parameters.
    fn enter_fn(&mut self) {
        self.scope.clear();
        let Some(Tok::Ident(_)) = self.peek() else {
            return;
        };
        self.pos += 1;
        // Skip generics, if any, up to the opening paren on this header.
        while let Some(tok) = self.peek() {
            match tok {
                Tok::LParen => break,
                // A brace before the paren means this wasn't a header.
                Tok::Other('{') | Tok::Semi => return,
                _ => self.pos += 1,
            }
        }
        self.pos += 1; // consume '('
        let mut depth = 1i32;
        // Collect `name: Type` pairs at depth 1.
        while depth > 0 {
            match self.bump() {
                None => return,
                Some(Tok::LParen) => depth += 1,
                Some(Tok::RParen) => depth -= 1,
                Some(Tok::Ident(name)) if depth == 1 && self.peek() == Some(&Tok::Colon) => {
                    self.pos += 1;
                    // `&`/`mut` prefixes, then the type name.
                    while matches!(self.peek(), Some(Tok::Amp))
                        || matches!(self.peek(), Some(Tok::Ident(w)) if w == "mut")
                    {
                        self.pos += 1;
                    }
                    if let Some(Tok::Ident(ty_name)) = self.peek() {
                        let ty = UnitKind::from_type_name(ty_name).map_or(Ty::Unknown, Ty::Unit);
                        self.scope.insert(name, ty);
                    }
                }
                _ => {}
            }
        }
    }

    /// Parses `let [mut] name [: Type] = expr;`. Non-identifier patterns
    /// and bodies containing control flow are skipped conservatively.
    fn let_statement(&mut self) {
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == "mut") {
            self.pos += 1;
        }
        let Some(Tok::Ident(name)) = self.peek().cloned() else {
            // Tuple/struct/ref pattern: skip the statement wholesale.
            self.skip_past(&Tok::Semi);
            return;
        };
        self.pos += 1;
        let mut annotated: Option<Ty> = None;
        if self.peek() == Some(&Tok::Colon) {
            self.pos += 1;
            if let Some(Tok::Ident(ty_name)) = self.peek() {
                annotated = UnitKind::from_type_name(ty_name).map(Ty::Unit);
            }
            // Skip the rest of the annotation up to `=` (or `;`).
            while let Some(tok) = self.peek() {
                match tok {
                    Tok::Eq | Tok::Semi => break,
                    _ => self.pos += 1,
                }
            }
        }
        if self.peek() != Some(&Tok::Eq) {
            self.skip_past(&Tok::Semi);
            return;
        }
        self.pos += 1;
        // Guardrail: blocks, closures, branches and let-else in the RHS
        // are out of scope for the lattice — bind Unknown, skip.
        if self.rhs_has_control_flow() {
            self.skip_past(&Tok::Semi);
            self.scope.insert(name, Ty::Unknown);
            return;
        }
        let ty = self.expr();
        self.skip_past(&Tok::Semi);
        self.scope.insert(name, annotated.unwrap_or(ty));
    }

    /// Whether the tokens between here and the statement's `;` contain
    /// constructs the expression lattice does not model.
    fn rhs_has_control_flow(&self) -> bool {
        let mut depth = 0i32;
        for spanned in &self.toks[self.pos..] {
            match &spanned.tok {
                Tok::LParen => depth += 1,
                Tok::RParen => depth -= 1,
                Tok::Semi if depth <= 0 => return false,
                Tok::Other('{' | '}' | '|' | '?') => return true,
                Tok::Ident(w) if matches!(w.as_str(), "if" | "match" | "loop" | "while") => {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    // -- expression grammar -------------------------------------------

    fn expr(&mut self) -> Ty {
        let mut acc = self.term();
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => Tok::Plus,
                Some(Tok::Minus) => Tok::Minus,
                _ => return acc,
            };
            let line = self.line_here();
            self.pos += 1;
            let rhs = self.term();
            acc = self.additive(op.clone(), acc, rhs, line);
        }
    }

    fn additive(&mut self, op: Tok, a: Ty, b: Ty, line: usize) -> Ty {
        let op_str = if op == Tok::Plus { "+" } else { "-" };
        match (a, b) {
            (Ty::Raw(x), Ty::Raw(y)) if x != y => {
                self.report(
                    line,
                    format!(
                        "`{op_str}` mixes raw f64 projections of distinct dimensions: {} and {}",
                        x.name(),
                        y.name()
                    ),
                );
                Ty::Unknown
            }
            (Ty::Raw(x), Ty::Raw(_)) => Ty::Raw(x),
            (Ty::Raw(x), Ty::Scalar) | (Ty::Scalar, Ty::Raw(x)) => Ty::Raw(x),
            (Ty::Unit(x), Ty::Unit(y)) if x != y => {
                self.report(
                    line,
                    format!(
                        "`{op_str}` mixes distinct unit newtypes: {} and {}",
                        x.name(),
                        y.name()
                    ),
                );
                Ty::Unknown
            }
            (Ty::Unit(x), Ty::Unit(_)) => Ty::Unit(x),
            (Ty::Scalar, Ty::Scalar) => Ty::Scalar,
            _ => Ty::Unknown,
        }
    }

    fn term(&mut self) -> Ty {
        let mut acc = self.unary();
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => Tok::Star,
                Some(Tok::Slash) => Tok::Slash,
                _ => return acc,
            };
            self.pos += 1;
            let rhs = self.unary();
            acc = multiplicative(op, acc, rhs);
        }
    }

    fn unary(&mut self) -> Ty {
        while matches!(self.peek(), Some(Tok::Minus | Tok::Amp)) {
            self.pos += 1;
        }
        let base = self.primary();
        self.postfix(base)
    }

    fn primary(&mut self) -> Ty {
        match self.bump() {
            Some(Tok::LParen) => {
                let inner = self.expr();
                if self.peek() == Some(&Tok::RParen) {
                    self.pos += 1;
                }
                inner
            }
            Some(Tok::Number(_)) => Ty::Scalar,
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::PathSep) {
                    return self.path_tail(&name);
                }
                if self.peek() == Some(&Tok::LParen) {
                    // Free function call: evaluate args, unknown result.
                    self.pos += 1;
                    self.call_args();
                    return Ty::Unknown;
                }
                self.scope.get(&name).copied().unwrap_or(Ty::Unknown)
            }
            _ => Ty::Unknown,
        }
    }

    /// `Name::segment...` — a constructor/associated item of a unit
    /// newtype yields `Unit(kind)` whatever the segment is.
    fn path_tail(&mut self, head: &str) -> Ty {
        let kind = UnitKind::from_type_name(head);
        while self.peek() == Some(&Tok::PathSep) {
            self.pos += 1;
            if matches!(self.peek(), Some(Tok::Ident(_))) {
                self.pos += 1;
            } else {
                return Ty::Unknown;
            }
        }
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            self.call_args();
        }
        kind.map_or(Ty::Unknown, Ty::Unit)
    }

    /// Method calls and field projections on a computed receiver.
    fn postfix(&mut self, mut ty: Ty) -> Ty {
        while self.peek() == Some(&Tok::Dot) {
            let line = self.line_here();
            match self.peek_at(1) {
                Some(Tok::Number(n)) => {
                    // `.0` (or any tuple index) on a unit newtype erases
                    // the dimension — flag it in physics code.
                    if let Ty::Unit(kind) = ty {
                        let n = n.clone();
                        self.report(
                            line,
                            format!(
                                "`.{n}` projects the {} newtype to a bare f64; use the named accessor so the dimension stays visible",
                                kind.name()
                            ),
                        );
                        ty = Ty::Raw(kind);
                    } else {
                        ty = Ty::Unknown;
                    }
                    self.pos += 2;
                }
                Some(Tok::Ident(method)) => {
                    let method = method.clone();
                    self.pos += 2;
                    if self.peek() == Some(&Tok::LParen) {
                        self.pos += 1;
                        self.call_args();
                        ty = method_result(&method, ty);
                    } else {
                        // Plain field access: untracked.
                        ty = Ty::Unknown;
                    }
                }
                _ => return Ty::Unknown,
            }
        }
        ty
    }

    /// Parses a parenthesized argument list (the `(` is already
    /// consumed), analyzing each argument expression for findings.
    fn call_args(&mut self) {
        loop {
            match self.peek() {
                None | Some(Tok::Semi) => return,
                Some(Tok::RParen) => {
                    self.pos += 1;
                    return;
                }
                Some(Tok::Comma) => {
                    self.pos += 1;
                }
                _ => {
                    let before = self.pos;
                    let _ = self.expr();
                    if self.pos == before {
                        // Unparseable argument token: skip it so the
                        // loop always advances.
                        self.pos += 1;
                    }
                }
            }
        }
    }
}

fn multiplicative(op: Tok, a: Ty, b: Ty) -> Ty {
    match (a, b) {
        (Ty::Unit(x), Ty::Unit(y)) => match (op.clone(), x == y) {
            (Tok::Slash, true) => Ty::Scalar,
            _ => unit_algebra(op, x, y).map_or(Ty::Unknown, Ty::Unit),
        },
        (Ty::Unit(x), Ty::Scalar) | (Ty::Scalar, Ty::Unit(x)) => Ty::Unit(x),
        (Ty::Scalar, Ty::Scalar) => Ty::Scalar,
        // A raw factor may carry inverse units (a fitted slope in 1/A),
        // so anything it touches is untracked rather than misreported.
        _ => Ty::Unknown,
    }
}

fn method_result(method: &str, receiver: Ty) -> Ty {
    if let Some(kind) = UnitKind::from_projection(method) {
        return Ty::Raw(kind);
    }
    if PRESERVING_METHODS.contains(&method) {
        return receiver;
    }
    match method {
        // Amps::at_volts(Volts) -> Watts; Watts::current_at(Volts) -> Amps.
        "at_volts" => Ty::Unit(UnitKind::Watts),
        "current_at" => Ty::Unit(UnitKind::Amps),
        _ => Ty::Unknown,
    }
}

/// Runs the dataflow pass over one physics source file, returning raw
/// findings (inline suppression is applied by the caller).
#[must_use]
pub fn check_file(rel_path: &str, scan: &Scan) -> Vec<Finding> {
    let mut pass = Pass {
        scan,
        rel_path,
        toks: tokenize(&scan.cleaned),
        pos: 0,
        scope: std::collections::BTreeMap::new(),
        findings: Vec::new(),
    };
    pass.run();
    pass.findings
        .sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
    pass.findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        check_file("crates/fuelcell/src/fixture.rs", &Scan::new(src))
    }

    #[test]
    fn flags_raw_projection_mixing() {
        let got = findings("fn f(i: Amps, t: Seconds) {\n    let x = i.amps() + t.seconds();\n}\n");
        assert_eq!(got.len(), 1, "{got:#?}");
        assert_eq!(got[0].line, 2);
        assert!(got[0].message.contains("Amps"));
        assert!(got[0].message.contains("Seconds"));
    }

    #[test]
    fn same_dimension_projections_are_fine() {
        let got = findings(
            "fn f(a: Amps, b: Amps) {\n    let x = a.amps() - b.amps();\n    let y = x + 1.0;\n}\n",
        );
        assert!(got.is_empty(), "{got:#?}");
    }

    #[test]
    fn multiplication_with_raw_factors_is_untracked() {
        // slope carries 1/A — must NOT be flagged.
        let got = findings(
            "fn f(e: Efficiency, i: Amps, intercept: f64, slope: f64) {\n    let r = e.value() - (intercept + slope * i.amps());\n}\n",
        );
        assert!(got.is_empty(), "{got:#?}");
    }

    #[test]
    fn unit_algebra_tracks_ohms_law() {
        let got = findings(
            "fn f(v: Volts, i: Amps, t: Seconds) {\n    let p = v * i;\n    let e = p * t;\n    let bad = p + t;\n}\n",
        );
        assert_eq!(got.len(), 1, "{got:#?}");
        assert!(got[0].message.contains("Watts"));
        assert!(got[0].message.contains("Seconds"));
    }

    #[test]
    fn shadowing_tracks_the_latest_binding() {
        let got = findings(
            "fn f(i: Amps, t: Seconds) {\n    let x = i.amps();\n    let x = t.seconds();\n    let y = x + i.amps();\n}\n",
        );
        assert_eq!(got.len(), 1, "shadowed x is Seconds now: {got:#?}");
        assert_eq!(got[0].line, 4);
    }

    #[test]
    fn method_chains_preserve_and_project() {
        let got = findings(
            "fn f(i: Amps, cap: Charge) {\n    let clamped = i.max_zero().amps();\n    let x = clamped + cap.amp_seconds();\n}\n",
        );
        assert_eq!(got.len(), 1, "{got:#?}");
        assert!(got[0].message.contains("Amps"));
        assert!(got[0].message.contains("Charge"));
    }

    #[test]
    fn tuple_projection_of_unit_is_flagged() {
        let got = findings("fn f(i: Amps) {\n    let raw = i.0;\n}\n");
        assert_eq!(got.len(), 1, "{got:#?}");
        assert!(got[0].message.contains(".0"));
        assert!(got[0].message.contains("Amps"));
    }

    #[test]
    fn control_flow_rhs_is_skipped() {
        let got = findings(
            "fn f(i: Amps, t: Seconds) {\n    let x = if true { i.amps() } else { t.seconds() };\n    let y = x + i.amps();\n}\n",
        );
        assert!(got.is_empty(), "x is Unknown, y untracked: {got:#?}");
    }

    #[test]
    fn constructors_and_annotations_bind_units() {
        let got = findings(
            "fn f() {\n    let i = Amps::new(0.5);\n    let t: Seconds = Seconds::ZERO;\n    let bad = i + t;\n}\n",
        );
        assert_eq!(got.len(), 1, "{got:#?}");
        assert!(got[0].message.contains("unit newtypes"));
    }

    #[test]
    fn findings_inside_call_arguments_fire() {
        let got =
            findings("fn f(i: Amps, t: Seconds) {\n    let x = g(i.amps() + t.seconds());\n}\n");
        assert_eq!(got.len(), 1, "{got:#?}");
    }

    #[test]
    fn test_spans_are_excluded() {
        let got = findings(
            "#[cfg(test)]\nmod tests {\n    fn f(i: Amps, t: Seconds) {\n        let x = i.amps() + t.seconds();\n    }\n}\n",
        );
        assert!(got.is_empty(), "{got:#?}");
    }
}
