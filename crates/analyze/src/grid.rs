//! Static feasibility checks for runner job grids.
//!
//! The batch runner executes `JobGrid` JSON files (see
//! `examples/batch_paper_grid.json`), and the fleet engine executes
//! intensional `GridSpec` files (see `examples/grid_fleet.json`). Some
//! spec mistakes only explode at run time — a `Constant` setpoint
//! outside the stack's load-following range, a β that makes the
//! Equation 4 denominator non-positive, a storage buffer too small to
//! ride through one sleep transition. This pass validates the committed
//! grid files against the paper manifest so those mistakes fail in CI,
//! before any simulation runs.
//!
//! The two formats share the policy/capacity checks; a document with a
//! `seeds` field is a `GridSpec` (workloads are seedless families, the
//! optional axes are preset lists), anything else with `policies` +
//! `workloads` is a legacy `JobGrid`.

use fcdpm_lint::{Finding, Json};

use crate::AnalyzeRule;

/// Paper parameters the feasibility checks compare against, extracted
/// from `paper-constants.toml` by the caller. When the manifest is
/// absent the range-dependent checks are skipped (structural checks
/// still run).
#[derive(Debug, Clone, Copy)]
pub struct PaperParams {
    /// Load-following minimum, amps.
    pub i_f_min: f64,
    /// Load-following maximum, amps.
    pub i_f_max: f64,
    /// Efficiency intercept α (Equation 4).
    pub alpha: f64,
    /// Worst-case charge drawn from storage across one sleep
    /// transition, in mA·min, over all device presets in the manifest.
    pub min_capacity_mamin: f64,
}

/// Whether a parsed JSON document looks like a `JobGrid` (the discovery
/// predicate for `examples/*.json`).
#[must_use]
pub fn looks_like_grid(doc: &Json) -> bool {
    doc.get("policies").is_some() && doc.get("workloads").is_some()
}

/// Validates one grid document. `rel_path` anchors the findings; the
/// hand-rolled JSON reader does not track lines, so everything reports
/// at line 1 of the file.
#[must_use]
pub fn check(rel_path: &str, doc: &Json, params: Option<&PaperParams>) -> Vec<Finding> {
    let mut ctx = Ctx {
        rel_path,
        params,
        findings: Vec::new(),
    };
    if doc.get("seeds").is_some() {
        ctx.check_gridspec(doc);
        return ctx.findings;
    }
    ctx.check_axis_nonempty(doc, "policies");
    ctx.check_axis_nonempty(doc, "workloads");
    if let Some(Json::Arr(policies)) = doc.get("policies") {
        for policy in policies {
            ctx.check_policy(policy, "policies");
        }
    }
    if let Some(Json::Arr(workloads)) = doc.get("workloads") {
        for workload in workloads {
            ctx.check_workload(workload);
        }
    }
    if let Some(Json::Arr(betas)) = doc.get("betas") {
        for beta in betas {
            ctx.check_beta(beta.as_f64(), "betas");
        }
    }
    if let Some(Json::Arr(capacities)) = doc.get("capacities_mamin") {
        for capacity in capacities {
            ctx.check_capacity(capacity.as_f64(), "capacities_mamin");
        }
    }
    if let Some(Json::Arr(effs)) = doc.get("buffer_path_efficiencies") {
        for eff in effs {
            ctx.check_path_efficiency(eff.as_f64(), "buffer_path_efficiencies");
        }
    }
    if let Some(Json::Arr(jobs)) = doc.get("extra_jobs") {
        for (index, job) in jobs.iter().enumerate() {
            ctx.check_extra_job(index, job);
        }
    }
    ctx.findings
}

struct Ctx<'a> {
    rel_path: &'a str,
    params: Option<&'a PaperParams>,
    findings: Vec<Finding>,
}

impl Ctx<'_> {
    fn report(&mut self, message: String) {
        self.findings.push(Finding {
            rule: AnalyzeRule::GridFeasibility.id(),
            path: self.rel_path.to_owned(),
            line: 1,
            message,
        });
    }

    /// Validates an intensional `GridSpec` (the fleet-engine format):
    /// a seed axis, seedless workload families, policy specs, and
    /// optional fault-preset / capacity / resilience axes.
    fn check_gridspec(&mut self, doc: &Json) {
        match doc.get("seeds") {
            Some(Json::Obj(fields)) if fields.len() == 1 => {
                let (variant, payload) = &fields[0];
                match variant.as_str() {
                    "List" => {
                        if !matches!(payload, Json::Arr(seeds) if !seeds.is_empty()) {
                            self.report("seeds: List needs a non-empty array of seeds".to_owned());
                        }
                    }
                    "Range" => {
                        if !payload
                            .get("count")
                            .and_then(Json::as_f64)
                            .is_some_and(|c| c >= 1.0)
                        {
                            self.report("seeds: Range needs a `count` of at least 1".to_owned());
                        }
                        if payload.get("start").and_then(Json::as_f64).is_none() {
                            self.report("seeds: Range needs a numeric `start`".to_owned());
                        }
                    }
                    other => self.report(format!("seeds: unknown seed axis `{other}`")),
                }
            }
            _ => self.report("seeds: must be a `List` or `Range` axis object".to_owned()),
        }
        self.check_axis_nonempty(doc, "policies");
        self.check_axis_nonempty(doc, "workloads");
        if let Some(Json::Arr(policies)) = doc.get("policies") {
            for policy in policies {
                self.check_policy(policy, "policies");
            }
        }
        if let Some(Json::Arr(workloads)) = doc.get("workloads") {
            for workload in workloads {
                if !matches!(
                    workload,
                    Json::Str(name)
                        if matches!(name.as_str(), "Experiment1" | "Experiment2" | "MultiDevice")
                ) {
                    self.report(format!(
                        "workloads: unrecognized workload family {}",
                        payload_text(workload)
                    ));
                }
            }
        }
        if let Some(faults) = doc.get("faults").filter(|f| **f != Json::Null) {
            let Json::Arr(presets) = faults else {
                self.report("faults: must be an array of preset names".to_owned());
                return;
            };
            for preset in presets {
                if !matches!(
                    preset,
                    Json::Str(name) if matches!(
                        name.as_str(),
                        "None" | "Starvation" | "Fade" | "Storage" | "Predictor" | "Combined"
                    )
                ) {
                    self.report(format!(
                        "faults: unknown fault preset {}",
                        payload_text(preset)
                    ));
                }
            }
        }
        if let Some(Json::Arr(capacities)) = doc.get("capacities_mamin") {
            for capacity in capacities {
                self.check_capacity(capacity.as_f64(), "capacities_mamin");
            }
        }
        if let Some(resilient) = doc.get("resilient").filter(|r| **r != Json::Null) {
            let ok = matches!(resilient, Json::Arr(values)
                if values.iter().all(|v| matches!(v, Json::Bool(_))));
            if !ok {
                self.report("resilient: must be an array of booleans".to_owned());
            }
        }
    }

    fn check_axis_nonempty(&mut self, doc: &Json, axis: &str) {
        match doc.get(axis) {
            Some(Json::Arr(items)) if !items.is_empty() => {}
            Some(Json::Arr(_)) => {
                self.report(format!("`{axis}` is empty — the grid expands to zero jobs"));
            }
            _ => self.report(format!("`{axis}` must be a non-empty array")),
        }
    }

    /// A `PolicySpec` in serde's JSON encoding: unit variants are
    /// strings, payload variants are single-key objects.
    fn check_policy(&mut self, policy: &Json, context: &str) {
        match policy {
            Json::Str(name)
                if matches!(name.as_str(), "Conv" | "Asap" | "FcDpm" | "WindowedAverage") => {}
            Json::Obj(fields) if fields.len() == 1 => {
                let (variant, payload) = &fields[0];
                match variant.as_str() {
                    "Quantized" => {
                        if !payload.as_f64().is_some_and(|n| n >= 2.0) {
                            self.report(format!(
                                "{context}: Quantized needs at least 2 output levels, got {}",
                                payload_text(payload)
                            ));
                        }
                    }
                    "Constant" => self.check_constant_setpoint(payload.as_f64(), context),
                    other => self.report(format!("{context}: unknown policy variant `{other}`")),
                }
            }
            other => self.report(format!(
                "{context}: unrecognized policy encoding {}",
                payload_text(other)
            )),
        }
    }

    fn check_constant_setpoint(&mut self, setpoint: Option<f64>, context: &str) {
        let Some(x) = setpoint.filter(|x| x.is_finite()) else {
            self.report(format!(
                "{context}: Constant setpoint is not a finite number"
            ));
            return;
        };
        let Some(params) = self.params else { return };
        if x < params.i_f_min || x > params.i_f_max {
            self.report(format!(
                "{context}: Constant setpoint {x} A is outside the load-following range [{}, {}] A",
                params.i_f_min, params.i_f_max
            ));
        }
    }

    fn check_workload(&mut self, workload: &Json) {
        match workload {
            Json::Obj(fields)
                if fields.len() == 1
                    && matches!(
                        fields[0].0.as_str(),
                        "Experiment1" | "Experiment2" | "MultiDevice"
                    )
                    && fields[0].1.as_f64().is_some() => {}
            other => self.report(format!(
                "workloads: unrecognized workload encoding {}",
                payload_text(other)
            )),
        }
    }

    /// β must keep the Equation 4 denominator `α − β·I_F` positive over
    /// the whole load-following range.
    fn check_beta(&mut self, beta: Option<f64>, context: &str) {
        let Some(b) = beta.filter(|b| b.is_finite()) else {
            self.report(format!("{context}: β is not a finite number"));
            return;
        };
        if b < 0.0 {
            self.report(format!("{context}: β = {b} is negative"));
            return;
        }
        let Some(params) = self.params else { return };
        if params.alpha - b * params.i_f_max <= 0.0 {
            self.report(format!(
                "{context}: β = {b} makes the efficiency denominator α − β·I_F non-positive at I_F = {} A (α = {}) — the fuel model diverges inside the load-following range",
                params.i_f_max, params.alpha
            ));
        }
    }

    /// Storage must at least cover the worst single sleep transition.
    fn check_capacity(&mut self, capacity: Option<f64>, context: &str) {
        let Some(c) = capacity.filter(|c| c.is_finite() && *c > 0.0) else {
            self.report(format!(
                "{context}: capacity must be a positive finite number"
            ));
            return;
        };
        let Some(params) = self.params else { return };
        if c < params.min_capacity_mamin {
            self.report(format!(
                "{context}: capacity {c} mA·min cannot buffer one sleep transition (worst preset draws {:.1} mA·min)",
                params.min_capacity_mamin
            ));
        }
    }

    fn check_path_efficiency(&mut self, eff: Option<f64>, context: &str) {
        if !eff.is_some_and(|e| e.is_finite() && e > 0.0 && e <= 1.0) {
            self.report(format!(
                "{context}: buffer path efficiency must lie in (0, 1]"
            ));
        }
    }

    /// One-off jobs carry the same axes inline (`inject_panic` is
    /// legitimate here — the pool's fault-isolation tests use it).
    fn check_extra_job(&mut self, index: usize, job: &Json) {
        let context = format!("extra_jobs[{index}]");
        match job.get("policy") {
            Some(policy) => self.check_policy(policy, &context),
            None => self.report(format!("{context}: missing `policy`")),
        }
        match job.get("workload") {
            Some(workload) => self.check_workload(workload),
            None => self.report(format!("{context}: missing `workload`")),
        }
        if let Some(beta) = job.get("beta") {
            if beta != &Json::Null {
                self.check_beta(beta.as_f64(), &context);
            }
        }
        if let Some(capacity) = job.get("capacity_mamin") {
            if capacity != &Json::Null {
                self.check_capacity(capacity.as_f64(), &context);
            }
        }
        if let Some(eff) = job.get("buffer_path_efficiency") {
            if eff != &Json::Null {
                self.check_path_efficiency(eff.as_f64(), &context);
            }
        }
        if let Some(resilient) = job.get("resilient") {
            if !matches!(resilient, Json::Null | Json::Bool(_)) {
                self.report(format!("{context}: `resilient` must be a boolean"));
            }
        }
        if let Some(faults) = job.get("faults") {
            if faults != &Json::Null {
                self.check_faults(faults, &context);
            }
        }
    }

    /// Mirrors `FaultSchedule::validate` statically, plus the one range
    /// check the schedule itself cannot do: a starvation cap below the
    /// load-following minimum leaves the stack no feasible setpoint at
    /// all, so the window becomes a hard outage rather than a fault.
    fn check_faults(&mut self, faults: &Json, context: &str) {
        let context = format!("{context}.faults");
        let Some(Json::Arr(events)) = faults.get("events") else {
            self.report(format!("{context}: schedule needs an `events` array"));
            return;
        };
        for (index, event) in events.iter().enumerate() {
            let context = format!("{context}.events[{index}]");
            let at_s = event.get("at_s").and_then(Json::as_f64);
            if !at_s.is_some_and(|t| t.is_finite() && t >= 0.0) {
                self.report(format!("{context}: `at_s` must be finite and non-negative"));
            }
            let Some(Json::Obj(kind)) = event.get("kind") else {
                self.report(format!("{context}: `kind` must be a fault-variant object"));
                continue;
            };
            let [(variant, payload)] = kind.as_slice() else {
                self.report(format!("{context}: `kind` must have exactly one variant"));
                continue;
            };
            let field = |name: &str| payload.get(name).and_then(Json::as_f64);
            let window_holds = |until: Option<f64>| {
                until.is_some_and(|u| u.is_finite() && at_s.is_none_or(|t| u >= t))
            };
            match variant.as_str() {
                "FuelStarvation" => {
                    if !window_holds(field("until_s")) {
                        self.report(format!(
                            "{context}: `until_s` must be finite and at or after `at_s`"
                        ));
                    }
                    let max_a = field("max_a");
                    if !max_a.is_some_and(|x| x.is_finite() && x > 0.0) {
                        self.report(format!("{context}: `max_a` must be finite and positive"));
                    } else if let (Some(x), Some(params)) = (max_a, self.params) {
                        if x < params.i_f_min {
                            self.report(format!(
                                "{context}: starvation cap {x} A sits below the load-following minimum {} A — the window is a hard outage, not a fault",
                                params.i_f_min
                            ));
                        }
                    }
                }
                "EfficiencyFade" => {
                    if !field("alpha_scale").is_some_and(|x| x.is_finite() && x > 0.0 && x <= 1.0) {
                        self.report(format!("{context}: `alpha_scale` must be in (0, 1]"));
                    }
                    if !field("beta_scale").is_some_and(|x| x.is_finite() && x >= 1.0) {
                        self.report(format!("{context}: `beta_scale` must be at least 1"));
                    }
                }
                "StorageFade" => {
                    if !field("capacity_scale")
                        .is_some_and(|x| x.is_finite() && x > 0.0 && x <= 1.0)
                    {
                        self.report(format!("{context}: `capacity_scale` must be in (0, 1]"));
                    }
                }
                "SelfDischarge" => {
                    if !field("leak_a").is_some_and(|x| x.is_finite() && x >= 0.0) {
                        self.report(format!(
                            "{context}: `leak_a` must be finite and non-negative"
                        ));
                    }
                }
                "PredictorDropout" => {
                    if !window_holds(field("until_s")) {
                        self.report(format!(
                            "{context}: `until_s` must be finite and at or after `at_s`"
                        ));
                    }
                }
                "PredictorNoise" => {
                    if !window_holds(field("until_s")) {
                        self.report(format!(
                            "{context}: `until_s` must be finite and at or after `at_s`"
                        ));
                    }
                    if !field("magnitude").is_some_and(|x| (0.0..1.0).contains(&x)) {
                        self.report(format!("{context}: `magnitude` must be in [0, 1)"));
                    }
                }
                other => self.report(format!("{context}: unknown fault kind `{other}`")),
            }
        }
    }
}

fn payload_text(json: &Json) -> String {
    match json {
        Json::Null => "null".to_owned(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => n.to_string(),
        Json::Float(x) => format!("{x:?}"),
        Json::Str(s) => format!("`{s}`"),
        Json::Arr(_) => "an array".to_owned(),
        Json::Obj(_) => "an object".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PARAMS: PaperParams = PaperParams {
        i_f_min: 0.1,
        i_f_max: 1.2,
        alpha: 0.45,
        min_capacity_mamin: 40.0,
    };

    fn check_str(text: &str) -> Vec<Finding> {
        let doc = fcdpm_lint::json::parse(text).expect("fixture parses");
        check("examples/fixture.json", &doc, Some(&PARAMS))
    }

    #[test]
    fn committed_example_grid_shape_is_clean() {
        let got = check_str(
            r#"{"policies": ["Conv", "Asap", "FcDpm", {"Quantized": 4}, {"Constant": 0.6}],
                "workloads": [{"Experiment1": 3670024199}],
                "betas": [0.13, 0.2],
                "capacities_mamin": [50.0, 100.0],
                "buffer_path_efficiencies": [1.0, 0.9],
                "extra_jobs": [{"policy": "FcDpm", "workload": {"Experiment1": 1}, "inject_panic": true}]}"#,
        );
        assert!(got.is_empty(), "{got:#?}");
    }

    #[test]
    fn out_of_range_constant_setpoint_is_rejected() {
        let got =
            check_str(r#"{"policies": [{"Constant": 1.3}], "workloads": [{"Experiment1": 1}]}"#);
        assert_eq!(got.len(), 1, "{got:#?}");
        assert!(got[0].message.contains("load-following range"));
        assert!(got[0].message.contains("1.3"));
    }

    #[test]
    fn degenerate_quantized_and_empty_axes_are_rejected() {
        let got = check_str(r#"{"policies": [{"Quantized": 1}], "workloads": []}"#);
        assert_eq!(got.len(), 2, "{got:#?}");
        assert!(got.iter().any(|f| f.message.contains("zero jobs")));
        assert!(got.iter().any(|f| f.message.contains("at least 2")));
    }

    #[test]
    fn divergent_beta_and_undersized_capacity_are_rejected() {
        let got = check_str(
            r#"{"policies": ["Conv"], "workloads": [{"Experiment2": 1}],
                "betas": [0.4], "capacities_mamin": [10.0]}"#,
        );
        assert_eq!(got.len(), 2, "{got:#?}");
        assert!(got.iter().any(|f| f.message.contains("non-positive")));
        assert!(got.iter().any(|f| f.message.contains("sleep transition")));
    }

    #[test]
    fn extra_job_axes_are_checked_inline() {
        let got = check_str(
            r#"{"policies": ["Conv"], "workloads": [{"Experiment1": 1}],
                "extra_jobs": [{"policy": {"Constant": 0.05}, "workload": {"Experiment1": 1},
                                "buffer_path_efficiency": 1.5}]}"#,
        );
        assert_eq!(got.len(), 2, "{got:#?}");
        assert!(got
            .iter()
            .all(|f| f.message.contains("extra_jobs[0]") || f.message.contains("(0, 1]")));
    }

    #[test]
    fn well_formed_fault_schedule_is_clean() {
        let got = check_str(
            r#"{"policies": ["Conv"], "workloads": [{"Experiment1": 1}],
                "extra_jobs": [{"policy": "FcDpm", "workload": {"Experiment1": 1},
                                "resilient": true,
                                "faults": {"seed": 1, "events": [
                                  {"at_s": 200.0, "kind": {"FuelStarvation": {"until_s": 740.0, "max_a": 0.47}}},
                                  {"at_s": 400.0, "kind": {"StorageFade": {"capacity_scale": 0.6}}},
                                  {"at_s": 900.0, "kind": {"PredictorNoise": {"until_s": 1300.0, "magnitude": 0.3}}}]}}]}"#,
        );
        assert!(got.is_empty(), "{got:#?}");
    }

    #[test]
    fn broken_fault_schedules_are_rejected() {
        let got = check_str(
            r#"{"policies": ["Conv"], "workloads": [{"Experiment1": 1}],
                "extra_jobs": [{"policy": "FcDpm", "workload": {"Experiment1": 1},
                                "resilient": 7,
                                "faults": {"seed": 1, "events": [
                                  {"at_s": -5.0, "kind": {"FuelStarvation": {"until_s": 740.0, "max_a": 0.05}}},
                                  {"at_s": 10.0, "kind": {"EfficiencyFade": {"alpha_scale": 1.5, "beta_scale": 0.5}}},
                                  {"at_s": 20.0, "kind": {"Meteor": {}}}]}}]}"#,
        );
        assert!(
            got.iter().any(|f| f.message.contains("`resilient`")),
            "{got:#?}"
        );
        assert!(got.iter().any(|f| f.message.contains("`at_s`")), "{got:#?}");
        assert!(
            got.iter().any(|f| f.message.contains("hard outage")),
            "{got:#?}"
        );
        assert!(
            got.iter().any(|f| f.message.contains("alpha_scale")),
            "{got:#?}"
        );
        assert!(
            got.iter().any(|f| f.message.contains("beta_scale")),
            "{got:#?}"
        );
        assert!(
            got.iter()
                .any(|f| f.message.contains("unknown fault kind `Meteor`")),
            "{got:#?}"
        );
    }

    #[test]
    fn fault_schedule_without_events_is_rejected() {
        let got = check_str(
            r#"{"policies": ["Conv"], "workloads": [{"Experiment1": 1}],
                "extra_jobs": [{"policy": "FcDpm", "workload": {"Experiment1": 1},
                                "faults": {"seed": 1}}]}"#,
        );
        assert_eq!(got.len(), 1, "{got:#?}");
        assert!(got[0].message.contains("`events` array"));
    }

    #[test]
    fn well_formed_gridspec_is_clean() {
        let got = check_str(
            r#"{"name": "fleet",
                "seeds": {"Range": {"start": 3670024199, "count": 50}},
                "workloads": ["Experiment1", "MultiDevice"],
                "policies": ["Conv", "FcDpm", {"Constant": 0.6}],
                "faults": ["None", "Starvation", "Combined"],
                "capacities_mamin": [50.0, 100.0],
                "resilient": [false, true]}"#,
        );
        assert!(got.is_empty(), "{got:#?}");
        let list = check_str(
            r#"{"seeds": {"List": [1, 2, 3]},
                "workloads": ["Experiment2"],
                "policies": ["Asap"]}"#,
        );
        assert!(list.is_empty(), "{list:#?}");
    }

    #[test]
    fn broken_gridspec_axes_are_rejected() {
        let got = check_str(
            r#"{"seeds": {"Range": {"start": 1, "count": 0}},
                "workloads": ["Experiment9"],
                "policies": [{"Constant": 1.3}],
                "faults": ["Meteor"],
                "capacities_mamin": [10.0],
                "resilient": [1]}"#,
        );
        assert!(
            got.iter().any(|f| f.message.contains("at least 1")),
            "{got:#?}"
        );
        assert!(
            got.iter().any(|f| f.message.contains("Experiment9")),
            "{got:#?}"
        );
        assert!(
            got.iter()
                .any(|f| f.message.contains("load-following range")),
            "{got:#?}"
        );
        assert!(got.iter().any(|f| f.message.contains("Meteor")), "{got:#?}");
        assert!(
            got.iter().any(|f| f.message.contains("sleep transition")),
            "{got:#?}"
        );
        assert!(
            got.iter().any(|f| f.message.contains("booleans")),
            "{got:#?}"
        );
        let empty_list = check_str(
            r#"{"seeds": {"List": []}, "workloads": ["Experiment1"], "policies": ["Conv"]}"#,
        );
        assert!(
            empty_list.iter().any(|f| f.message.contains("non-empty")),
            "{empty_list:#?}"
        );
    }

    #[test]
    fn range_checks_skip_without_manifest_params() {
        let doc = fcdpm_lint::json::parse(
            r#"{"policies": [{"Constant": 9.9}], "workloads": [{"Experiment1": 1}], "betas": [5.0]}"#,
        )
        .unwrap();
        let got = check("examples/fixture.json", &doc, None);
        assert!(got.is_empty(), "{got:#?}");
    }
}
