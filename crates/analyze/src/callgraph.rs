//! Workspace call graph on the lexical machinery.
//!
//! [`function_defs`](crate::callgraph::function_defs) lifts each file's
//! token stream into [`FnDef`]s — name, signature facts, cleaned body
//! text and the callee names that appear inside it — and [`CallGraph`]
//! aggregates them workspace-wide with a conservative name resolver:
//! a call resolves to a definition only when the name is unambiguous
//! (same file, else same crate, else unique in the workspace), and an
//! ambiguous or unknown name resolves to *nothing*, so interprocedural
//! passes degrade to their old per-function behaviour instead of
//! guessing. Test-span functions never enter the graph: a test helper
//! must not satisfy resolution for library code.

use std::collections::BTreeMap;

use fcdpm_lint::Scan;

use crate::syntax;

/// Names that precede a `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "else", "while", "for", "match", "loop", "return", "in", "move", "fn", "let", "as",
    "impl", "where",
];

/// One function definition (free function or `impl` method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// The declared name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Whether the signature declares a return type (`->`).
    pub has_return: bool,
    /// The cleaned body text (comments/strings already blanked).
    pub body: String,
    /// Callee names appearing in the body, sorted and deduplicated.
    pub calls: Vec<String>,
}

impl FnDef {
    /// Stable key: `<file>::<name>#<ordinal>` where the ordinal counts
    /// same-named functions earlier in the same file (two `impl` blocks
    /// can both define a `name` method).
    #[must_use]
    pub fn key(&self, ordinal: usize) -> String {
        format!("{}::{}#{}", self.file, self.name, ordinal)
    }
}

/// The crate a workspace-relative path belongs to (`crates/<k>/src/..`),
/// or the root pseudo-crate for `src/..`.
fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("fcdpm")
}

/// Callee names in `text`: every identifier immediately followed by
/// `(`, minus keywords, macro invocations (`name!(`) and the `fn`
/// definition headers themselves. Sorted and deduplicated — the graph
/// cares about the callee *set*, not the call count.
#[must_use]
pub fn call_names(text: &str) -> Vec<String> {
    let mut out: Vec<String> = call_sites(text).into_iter().map(|(_, name)| name).collect();
    out.sort();
    out.dedup();
    out
}

/// Like [`call_names`], but preserving each call's byte offset (for
/// line attribution inside a segment).
#[must_use]
pub fn call_sites(text: &str) -> Vec<(usize, String)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' || i == 0 {
            continue;
        }
        let mut j = i;
        while j > 0 && syntax::is_ident_char(bytes[j - 1] as char) {
            j -= 1;
        }
        if j == i || bytes[j].is_ascii_digit() {
            continue;
        }
        let name = &text[j..i];
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `format!(..)` never reaches here (the `!` breaks the ident
        // run), but `fn name(` does: skip definition headers.
        let before = text[..j].trim_end();
        if before.ends_with("fn")
            && !before[..before.len() - 2]
                .chars()
                .next_back()
                .is_some_and(syntax::is_ident_char)
        {
            continue;
        }
        out.push((j, name.to_owned()));
    }
    out
}

/// Extracts every non-test function definition from one scanned file.
#[must_use]
pub fn function_defs(rel_path: &str, scan: &Scan) -> Vec<FnDef> {
    let cleaned = &scan.cleaned;
    let mut out = Vec::new();
    for (fn_off, body) in syntax::function_bodies(cleaned) {
        if scan.is_test_line(scan.line_of(fn_off)) {
            continue;
        }
        let name = syntax::ident_after(cleaned, fn_off + "fn".len());
        if name.is_empty() {
            continue;
        }
        let signature = &cleaned[fn_off..body.start];
        let body_text = &cleaned[body.clone()];
        out.push(FnDef {
            file: rel_path.to_owned(),
            name: name.to_owned(),
            line: scan.line_of(fn_off),
            has_return: signature.contains("->"),
            body: body_text.to_owned(),
            calls: call_names(body_text),
        });
    }
    out
}

/// The aggregated workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every definition, in file-then-source order.
    pub defs: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from per-file definition lists.
    #[must_use]
    pub fn from_defs(defs: Vec<FnDef>) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, def) in defs.iter().enumerate() {
            by_name.entry(def.name.clone()).or_default().push(i);
        }
        Self { defs, by_name }
    }

    /// The stable key of definition `index` (see [`FnDef::key`]).
    #[must_use]
    pub fn key_of(&self, index: usize) -> String {
        let def = &self.defs[index];
        let ordinal = self.defs[..index]
            .iter()
            .filter(|d| d.file == def.file && d.name == def.name)
            .count();
        def.key(ordinal)
    }

    /// Resolves a call to `name` made from `caller_file`: unique match
    /// in the same file, else unique match in the same crate, else
    /// unique match workspace-wide; ambiguity resolves to `None`.
    #[must_use]
    pub fn resolve(&self, caller_file: &str, name: &str) -> Option<usize> {
        let candidates = self.by_name.get(name)?;
        let pick = |matching: Vec<usize>| match matching.as_slice() {
            [only] => Some(*only),
            _ => None,
        };
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.defs[i].file == caller_file)
            .collect();
        if !same_file.is_empty() {
            return pick(same_file);
        }
        let krate = crate_of(caller_file);
        let same_crate: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| crate_of(&self.defs[i].file) == krate)
            .collect();
        if !same_crate.is_empty() {
            return pick(same_crate);
        }
        pick(candidates.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs_of(rel: &str, src: &str) -> Vec<FnDef> {
        function_defs(rel, &Scan::new(src))
    }

    #[test]
    fn definitions_carry_names_signatures_and_calls() {
        let src = "fn stamp() -> u64 { pack(now()) }\nfn log(x: u64) { eprintln!(\"{x}\"); }\n";
        let defs = defs_of("crates/a/src/lib.rs", src);
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].name, "stamp");
        assert!(defs[0].has_return);
        assert_eq!(defs[0].calls, vec!["now".to_owned(), "pack".to_owned()]);
        assert_eq!(defs[1].name, "log");
        assert!(!defs[1].has_return);
    }

    #[test]
    fn impl_methods_and_macros_are_handled() {
        let src = "impl W {\n    fn helper(&self) -> u64 { self.inner() }\n}\n";
        let defs = defs_of("crates/a/src/lib.rs", src);
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].name, "helper");
        assert_eq!(defs[0].calls, vec!["inner".to_owned()]);
        // `format!(` is a macro, `if (` a keyword: neither is a call.
        assert!(call_names("format!(\"x\") ; if (a) {}").is_empty());
    }

    #[test]
    fn test_span_functions_stay_out_of_the_graph() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() -> u64 { 1 }\n}\n";
        assert!(defs_of("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn resolution_prefers_file_then_crate_and_refuses_ambiguity() {
        let mk = |file: &str, name: &str| FnDef {
            file: file.to_owned(),
            name: name.to_owned(),
            line: 1,
            has_return: true,
            body: String::new(),
            calls: Vec::new(),
        };
        let graph = CallGraph::from_defs(vec![
            mk("crates/a/src/lib.rs", "helper"),
            mk("crates/a/src/util.rs", "helper"),
            mk("crates/b/src/lib.rs", "helper"),
            mk("crates/b/src/lib.rs", "unique"),
        ]);
        // Same file wins outright.
        assert_eq!(graph.resolve("crates/a/src/lib.rs", "helper"), Some(0));
        // Two same-crate candidates from a third file: ambiguous.
        assert_eq!(graph.resolve("crates/a/src/other.rs", "helper"), None);
        // Unique in the caller's crate.
        assert_eq!(graph.resolve("crates/b/src/other.rs", "helper"), Some(2));
        // Unique workspace-wide from anywhere.
        assert_eq!(graph.resolve("crates/c/src/lib.rs", "unique"), Some(3));
        assert_eq!(graph.resolve("crates/c/src/lib.rs", "missing"), None);
    }
}
