//! Digest-keyed pass cache (`analyze-cache.json`).
//!
//! Every run reads, digests (FNV-1a, the grid-resume idiom) and scans
//! every workspace file — that part is cheap and parallel — but *pass
//! execution* is cached:
//!
//! * intra-file passes (`unit-dataflow`, `digest-stability`) are valid
//!   while the file's content digest is unchanged;
//! * interprocedural passes (`determinism-taint`, the hint passes) are
//!   valid while the content digest **and** the dependency digest are
//!   unchanged, where the dependency digest folds the (key, summary
//!   digest) pairs of every resolved cross-file callee
//!   ([`SummaryContext::file_deps`](crate::summaries::SummaryContext::file_deps))
//!   — editing a helper re-runs exactly its callers' interprocedural
//!   passes, nothing else;
//! * graph passes (layering, lock cycles, paper constants, grid
//!   feasibility) are recomputed every run from the always-fresh
//!   extraction — they are global and already cheap.
//!
//! Cached findings are stored *pre-suppression*; inline suppressions
//! are re-applied from the live scan, so editing only a suppression
//! comment behaves correctly even on a full-hit run. The file is
//! written atomically (unique tmp + rename), and a corrupt or
//! version-skewed cache degrades to a cold run, never an error.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use fcdpm_lint::{json, json::Json, Finding};
use fcdpm_runner::spec::fnv1a;

use crate::ALL_RULES;

/// Conventional cache file name, resolved against the analysis root.
pub const CACHE_FILE: &str = "analyze-cache.json";

/// One finding as cached (the rule id is interned back against
/// [`ALL_RULES`] on load; the path is implied by the owning entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedFinding {
    /// Rule id (must name a catalogue rule to replay).
    pub rule: &'static str,
    /// 1-indexed line.
    pub line: usize,
    /// Finding message.
    pub message: String,
}

impl CachedFinding {
    /// Rehydrates a [`Finding`] for `path`.
    #[must_use]
    pub fn to_finding(&self, path: &str) -> Finding {
        Finding {
            rule: self.rule,
            path: path.to_owned(),
            line: self.line,
            message: self.message.clone(),
        }
    }

    /// Captures a computed [`Finding`] (the path is dropped — it is the
    /// entry's key).
    #[must_use]
    pub fn from_finding(finding: &Finding) -> Self {
        Self {
            rule: finding.rule,
            line: finding.line,
            message: finding.message.clone(),
        }
    }
}

/// The cached state of one source file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CachedFile {
    /// FNV-1a digest of the file's bytes.
    pub digest: u64,
    /// Sorted `(callee key, summary digest)` dependency list backing
    /// the interprocedural results.
    pub deps: Vec<(String, u64)>,
    /// Pre-suppression findings per pass bucket.
    pub passes: BTreeMap<String, Vec<CachedFinding>>,
}

/// The whole persisted cache.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Per-source-file entries, keyed by workspace-relative path.
    pub files: BTreeMap<String, CachedFile>,
    /// Content digests of non-source inputs (`paper-constants.toml`,
    /// `examples/*.json`) — tracked so `--changed` sees their edits.
    pub inputs: BTreeMap<String, u64>,
}

/// Interns a rule id against the catalogue.
fn rule_by_id(id: &str) -> Option<&'static str> {
    ALL_RULES.iter().map(|r| r.id()).find(|r| *r == id)
}

impl Cache {
    /// True when nothing was loaded (a cold run).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty() && self.inputs.is_empty()
    }

    /// Loads the cache at `path`. Any miss — absent file, parse error,
    /// version skew, unknown rule id — degrades to an empty cache.
    #[must_use]
    pub fn load(path: &Path) -> Self {
        fs::read_to_string(path)
            .ok()
            .and_then(|text| Self::from_json(&text))
            .unwrap_or_default()
    }

    fn from_json(text: &str) -> Option<Self> {
        let doc = json::parse(text).ok()?;
        if doc.get("version")?.as_u64()? != 1 {
            return None;
        }
        let mut cache = Cache::default();
        for entry in doc.get("files")?.as_arr()? {
            let path = entry.get("path")?.as_str()?.to_owned();
            let mut file = CachedFile {
                digest: entry.get("digest")?.as_u64()?,
                ..CachedFile::default()
            };
            for dep in entry.get("deps")?.as_arr()? {
                file.deps.push((
                    dep.get("fn")?.as_str()?.to_owned(),
                    dep.get("digest")?.as_u64()?,
                ));
            }
            for pass in entry.get("passes")?.as_arr()? {
                let bucket = pass.get("pass")?.as_str()?.to_owned();
                let mut findings = Vec::new();
                for f in pass.get("findings")?.as_arr()? {
                    findings.push(CachedFinding {
                        rule: rule_by_id(f.get("rule")?.as_str()?)?,
                        line: usize::try_from(f.get("line")?.as_u64()?).ok()?,
                        message: f.get("message")?.as_str()?.to_owned(),
                    });
                }
                file.passes.insert(bucket, findings);
            }
            cache.files.insert(path, file);
        }
        for input in doc.get("inputs")?.as_arr()? {
            cache.inputs.insert(
                input.get("path")?.as_str()?.to_owned(),
                input.get("digest")?.as_u64()?,
            );
        }
        Some(cache)
    }

    fn to_json(&self) -> String {
        let files = self
            .files
            .iter()
            .map(|(path, file)| {
                let deps = file
                    .deps
                    .iter()
                    .map(|(key, digest)| {
                        Json::Obj(vec![
                            ("fn".into(), Json::Str(key.clone())),
                            ("digest".into(), Json::Num(*digest)),
                        ])
                    })
                    .collect();
                let passes = file
                    .passes
                    .iter()
                    .map(|(bucket, findings)| {
                        let list = findings
                            .iter()
                            .map(|f| {
                                Json::Obj(vec![
                                    ("rule".into(), Json::Str(f.rule.into())),
                                    ("line".into(), Json::Num(f.line as u64)),
                                    ("message".into(), Json::Str(f.message.clone())),
                                ])
                            })
                            .collect();
                        Json::Obj(vec![
                            ("pass".into(), Json::Str(bucket.clone())),
                            ("findings".into(), Json::Arr(list)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("path".into(), Json::Str(path.clone())),
                    ("digest".into(), Json::Num(file.digest)),
                    ("deps".into(), Json::Arr(deps)),
                    ("passes".into(), Json::Arr(passes)),
                ])
            })
            .collect();
        let inputs = self
            .inputs
            .iter()
            .map(|(path, digest)| {
                Json::Obj(vec![
                    ("path".into(), Json::Str(path.clone())),
                    ("digest".into(), Json::Num(*digest)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::Num(1)),
            ("files".into(), Json::Arr(files)),
            ("inputs".into(), Json::Arr(inputs)),
        ])
        .to_pretty()
    }

    /// Writes the cache atomically: a uniquely named sibling tmp file,
    /// then rename, so concurrent analyzers never observe a torn cache.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the write or rename.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp-{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, self.to_json())?;
        fs::rename(&tmp, path)
    }
}

/// Digest of one file's raw bytes.
#[must_use]
pub fn content_digest(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// Hit/miss accounting for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Source files considered.
    pub files_total: usize,
    /// Files whose every cached pass replayed (content and dependency
    /// digests both unchanged).
    pub files_reused: usize,
    /// Individual pass results replayed from cache.
    pub pass_hits: usize,
    /// Individual pass results recomputed.
    pub pass_misses: usize,
    /// No usable cache was loaded.
    pub cold: bool,
}

impl CacheStats {
    /// Human-format summary line (deliberately absent from JSON/SARIF so
    /// cold and warm artifacts stay byte-identical).
    #[must_use]
    pub fn human_line(&self) -> String {
        let pct = if self.files_total == 0 {
            100.0
        } else {
            self.files_reused as f64 / self.files_total as f64 * 100.0
        };
        format!(
            "analyze cache: {}/{} file(s) reused ({pct:.1}%); pass results: {} hit, {} recomputed{}",
            self.files_reused,
            self.files_total,
            self.pass_hits,
            self.pass_misses,
            if self.cold { " (cold run)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cache {
        let mut cache = Cache::default();
        cache.files.insert(
            "crates/a/src/lib.rs".into(),
            CachedFile {
                digest: 0xdead_beef,
                deps: vec![("crates/b/src/lib.rs::helper#0".into(), 42)],
                passes: BTreeMap::from([
                    (
                        "taint".to_owned(),
                        vec![CachedFinding {
                            rule: "determinism-taint",
                            line: 7,
                            message: "m".into(),
                        }],
                    ),
                    ("dataflow".to_owned(), Vec::new()),
                ]),
            },
        );
        cache.inputs.insert("paper-constants.toml".into(), 9);
        cache
    }

    #[test]
    fn round_trips_through_json() {
        let cache = sample();
        let text = cache.to_json();
        let back = Cache::from_json(&text).unwrap();
        assert_eq!(back.files, cache.files);
        assert_eq!(back.inputs, cache.inputs);
        // Serialization is deterministic.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn corrupt_or_skewed_caches_degrade_to_cold() {
        assert!(Cache::from_json("not json").is_none());
        assert!(Cache::from_json("{\"version\": 2, \"files\": [], \"inputs\": []}").is_none());
        let unknown_rule = "{\"version\": 1, \"files\": [{\"path\": \"a\", \"digest\": 1, \"deps\": [], \"passes\": [{\"pass\": \"taint\", \"findings\": [{\"rule\": \"no-such-rule\", \"line\": 1, \"message\": \"m\"}]}]}], \"inputs\": []}";
        assert!(Cache::from_json(unknown_rule).is_none());
        assert!(Cache::load(Path::new("/no/such/analyze-cache.json")).is_empty());
    }

    #[test]
    fn save_is_atomic_and_reloadable() {
        let dir = std::env::temp_dir().join(format!("fcdpm-cache-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CACHE_FILE);
        let cache = sample();
        cache.save(&path).unwrap();
        let back = Cache::load(&path);
        assert_eq!(back.files, cache.files);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_render_the_human_line() {
        let stats = CacheStats {
            files_total: 127,
            files_reused: 127,
            pass_hits: 508,
            pass_misses: 0,
            cold: false,
        };
        assert_eq!(
            stats.human_line(),
            "analyze cache: 127/127 file(s) reused (100.0%); pass results: 508 hit, 0 recomputed"
        );
    }
}
