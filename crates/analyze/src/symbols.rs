//! Item-level structure and the cross-crate symbol/module graph.
//!
//! The lint layer sees one file at a time; this module lifts the token
//! stream into items (`fn`/`struct`/`enum`/`trait`/`const`/`static`/
//! `type`/`mod`) and `use` edges, then aggregates per-crate so rules can
//! reason about the workspace as a graph. The first consumer is the
//! `layering` rule: every `use fcdpm_*::` edge must match the Cargo
//! dependency DAG, so an accidental upward import (e.g. a physics crate
//! reaching into the runner) is caught even before `cargo` rejects it —
//! and *re-exports* that would launder such an edge are visible because
//! `pub use` edges are tracked distinctly.

use std::collections::{BTreeMap, BTreeSet};

use fcdpm_lint::scan::token_occurrences;
use fcdpm_lint::{Finding, Scan};

use crate::AnalyzeRule;

/// What kind of item a declaration introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ItemKind {
    /// `fn` (including methods inside `impl` blocks).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait`.
    Trait,
    /// `const`.
    Const,
    /// `static`.
    Static,
    /// `type` alias.
    TypeAlias,
    /// `mod` declaration or inline module.
    Mod,
}

/// One declared item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// The declaration kind.
    pub kind: ItemKind,
    /// The declared name.
    pub name: String,
    /// 1-indexed line of the declaration.
    pub line: usize,
    /// Whether the declaration carries any `pub` visibility.
    pub is_pub: bool,
}

/// One `use` edge out of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseEdge {
    /// First path segment (`fcdpm_units`, `crate`, `std`, ...).
    pub target: String,
    /// 1-indexed line of the `use`.
    pub line: usize,
    /// Whether this is a `pub use` re-export.
    pub is_pub: bool,
}

/// The items and use edges of one source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSymbols {
    /// Workspace-relative path.
    pub path: String,
    /// Owning crate (`None` for paths outside crate `src/` trees).
    pub krate: Option<String>,
    /// Declared items in file order (test-span items excluded).
    pub items: Vec<Item>,
    /// `use` edges in file order (test-span uses excluded).
    pub uses: Vec<UseEdge>,
}

/// The per-crate aggregation of every scanned file.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// Per-file symbols, in scan order (sorted by path upstream).
    pub files: Vec<FileSymbols>,
}

impl SymbolGraph {
    /// Adds one scanned file to the graph.
    pub fn add_file(&mut self, rel_path: &str, scan: &Scan) {
        self.files.push(file_symbols(rel_path, scan));
    }

    /// The workspace crates each crate imports (`fcdpm_x` edges only,
    /// with the `fcdpm_` prefix stripped).
    #[must_use]
    pub fn crate_deps(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for file in &self.files {
            let Some(krate) = &file.krate else { continue };
            let entry = deps.entry(krate.clone()).or_default();
            for edge in &file.uses {
                if let Some(dep) = edge.target.strip_prefix("fcdpm_") {
                    entry.insert(dep.replace('_', "-"));
                }
            }
        }
        deps
    }

    /// Public items per crate, for cross-crate symbol lookups.
    #[must_use]
    pub fn public_items(&self) -> BTreeMap<String, Vec<&Item>> {
        let mut out: BTreeMap<String, Vec<&Item>> = BTreeMap::new();
        for file in &self.files {
            let Some(krate) = &file.krate else { continue };
            out.entry(krate.clone())
                .or_default()
                .extend(file.items.iter().filter(|i| i.is_pub));
        }
        out
    }
}

/// The crate each library source path belongs to (mirrors the lint's
/// scoping: `crates/<name>/src/**` → `<name>`, root `src/**` → `fcdpm`).
#[must_use]
pub fn crate_of(rel_path: &str) -> Option<String> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        tail.starts_with("src/").then(|| name.to_owned())
    } else if rel_path.starts_with("src/") {
        Some("fcdpm".to_owned())
    } else {
        None
    }
}

/// Extracts the items and use edges of one file.
#[must_use]
pub fn file_symbols(rel_path: &str, scan: &Scan) -> FileSymbols {
    let mut items = Vec::new();
    let mut uses = Vec::new();
    let mut offset = 0usize;
    for raw_line in scan.cleaned.split_inclusive('\n') {
        let line_no = scan.line_of(offset);
        offset += raw_line.len();
        if scan.is_test_line(line_no) {
            continue;
        }
        let trimmed = raw_line.trim_start();
        let (is_pub, rest) = strip_visibility(trimmed);
        if let Some(tail) = rest.strip_prefix("use ") {
            let target: String = tail
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !target.is_empty() {
                uses.push(UseEdge {
                    target,
                    line: line_no,
                    is_pub,
                });
            }
            continue;
        }
        if let Some((kind, tail)) = item_keyword(rest) {
            let name: String = tail
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() && name != "_" {
                items.push(Item {
                    kind,
                    name,
                    line: line_no,
                    is_pub,
                });
            }
        }
    }
    FileSymbols {
        path: rel_path.to_owned(),
        krate: crate_of(rel_path),
        items,
        uses,
    }
}

/// Strips a leading `pub` / `pub(...)` qualifier.
fn strip_visibility(line: &str) -> (bool, &str) {
    if let Some(rest) = line.strip_prefix("pub") {
        if let Some(tail) = rest.strip_prefix('(') {
            if let Some(close) = tail.find(')') {
                return (true, tail[close + 1..].trim_start());
            }
        }
        if rest.starts_with(char::is_whitespace) {
            return (true, rest.trim_start());
        }
    }
    (false, line)
}

/// Matches a declaration keyword at the start of a (visibility-stripped)
/// line. `const fn` is a function, not a constant.
fn item_keyword(line: &str) -> Option<(ItemKind, &str)> {
    for prefix in ["const fn ", "async fn ", "fn "] {
        if let Some(tail) = line.strip_prefix(prefix) {
            return Some((ItemKind::Fn, tail));
        }
    }
    let table: [(&str, ItemKind); 6] = [
        ("struct ", ItemKind::Struct),
        ("enum ", ItemKind::Enum),
        ("trait ", ItemKind::Trait),
        ("const ", ItemKind::Const),
        ("static ", ItemKind::Static),
        ("mod ", ItemKind::Mod),
    ];
    for (prefix, kind) in table {
        if let Some(tail) = line.strip_prefix(prefix) {
            return Some((kind, tail));
        }
    }
    // `type` aliases, but not `type` inside a where-clause/assoc position
    // (heuristic: declarations start the line after visibility).
    line.strip_prefix("type ")
        .map(|tail| (ItemKind::TypeAlias, tail))
}

/// The Cargo dependency DAG, mirrored so `use` edges can be checked
/// without parsing Cargo.toml at analysis time. A crate may import
/// itself, `std`/`core`/`alloc`, external shims and anything listed
/// here; everything else `fcdpm_*` is a layering violation.
const ALLOWED_DEPS: [(&str, &[&str]); 18] = [
    ("units", &[]),
    ("lint", &[]),
    ("analyze", &["lint", "runner"]),
    ("device", &["units"]),
    ("fuelcell", &["units"]),
    ("storage", &["units"]),
    ("workload", &["units", "device"]),
    ("predict", &["units", "workload"]),
    ("faults", &["fuelcell", "units"]),
    ("dvs", &["units", "fuelcell", "workload"]),
    (
        "core",
        &[
            "units", "device", "fuelcell", "predict", "storage", "workload",
        ],
    ),
    (
        "sim",
        &[
            "core", "device", "faults", "fuelcell", "predict", "storage", "units", "workload",
        ],
    ),
    (
        "runner",
        &[
            "core", "device", "dvs", "faults", "fuelcell", "predict", "sim", "storage", "units",
            "workload",
        ],
    ),
    (
        "grid",
        &[
            "core", "device", "faults", "fuelcell", "predict", "runner", "sim", "storage", "units",
            "workload",
        ],
    ),
    (
        "bench",
        &[
            "core", "device", "faults", "fuelcell", "grid", "predict", "runner", "sim", "storage",
            "units", "workload",
        ],
    ),
    (
        "cli",
        &[
            "analyze", "bench", "core", "device", "faults", "fuelcell", "grid", "lint", "predict",
            "runner", "sim", "storage", "units", "workload",
        ],
    ),
    (
        "experiments",
        &[
            "core", "device", "dvs", "fuelcell", "predict", "runner", "sim", "storage", "units",
            "workload",
        ],
    ),
    (
        "fcdpm",
        &[
            "core", "device", "dvs", "faults", "fuelcell", "predict", "sim", "storage", "units",
            "workload",
        ],
    ),
];

/// Checks every `use fcdpm_*` edge against [`ALLOWED_DEPS`].
#[must_use]
pub fn check_layering(graph: &SymbolGraph) -> Vec<Finding> {
    let allowed: BTreeMap<&str, &[&str]> = ALLOWED_DEPS.iter().copied().collect();
    let mut findings = Vec::new();
    for file in &graph.files {
        let Some(krate) = &file.krate else { continue };
        for edge in &file.uses {
            let Some(dep) = edge.target.strip_prefix("fcdpm_") else {
                continue;
            };
            let dep = dep.replace('_', "-");
            // A bin target importing its own package's lib is always a
            // legal edge, whatever the DAG table says.
            if dep == *krate {
                continue;
            }
            let ok = match allowed.get(krate.as_str()) {
                Some(deps) => deps.contains(&dep.as_str()),
                // Unknown crates (new additions) are not judged until
                // they are added to the table.
                None => true,
            };
            if !ok {
                findings.push(Finding {
                    rule: AnalyzeRule::Layering.id(),
                    path: file.path.clone(),
                    line: edge.line,
                    message: format!(
                        "crate `{krate}` must not import `fcdpm_{}`: the workspace layering (Cargo DAG) has no such edge",
                        dep.replace('-', "_")
                    ),
                });
            }
        }
    }
    findings
}

/// Convenience: whether `cleaned` text mentions a token at all (used by
/// callers probing for re-exported names).
#[must_use]
pub fn mentions(cleaned: &str, token: &str) -> bool {
    !token_occurrences(cleaned, token).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_items_and_uses() {
        let src = "\
use fcdpm_units::Amps;
pub use fcdpm_units::Volts;
pub(crate) const ALPHA: f64 = 0.45;
pub struct Stack;
impl Stack {
    pub fn current(&self) -> Amps { Amps::new(0.1) }
    const fn cells() -> u32 { 20 }
}
#[cfg(test)]
mod tests {
    fn hidden() {}
}
";
        let scan = Scan::new(src);
        let sym = file_symbols("crates/fuelcell/src/stack.rs", &scan);
        assert_eq!(sym.krate.as_deref(), Some("fuelcell"));
        let names: Vec<(&str, ItemKind, bool)> = sym
            .items
            .iter()
            .map(|i| (i.name.as_str(), i.kind, i.is_pub))
            .collect();
        assert!(names.contains(&("ALPHA", ItemKind::Const, true)));
        assert!(names.contains(&("Stack", ItemKind::Struct, true)));
        assert!(names.contains(&("current", ItemKind::Fn, true)));
        assert!(names.contains(&("cells", ItemKind::Fn, false)));
        assert!(
            !names.iter().any(|(n, _, _)| *n == "hidden"),
            "test-span items are excluded"
        );
        assert_eq!(sym.uses.len(), 2);
        assert!(sym.uses[1].is_pub);
        assert_eq!(sym.uses[0].target, "fcdpm_units");
    }

    #[test]
    fn layering_flags_upward_imports() {
        let mut graph = SymbolGraph::default();
        graph.add_file(
            "crates/fuelcell/src/bad.rs",
            &Scan::new("use fcdpm_runner::JobSpec;\nuse fcdpm_units::Amps;\n"),
        );
        let findings = check_layering(&graph);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("fcdpm_runner"));
        assert_eq!(
            graph.crate_deps()["fuelcell"],
            ["runner".to_owned(), "units".to_owned()]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn allowed_edges_are_quiet() {
        let mut graph = SymbolGraph::default();
        graph.add_file(
            "crates/core/src/ok.rs",
            &Scan::new(
                "use fcdpm_units::Amps;\nuse fcdpm_fuelcell::LinearEfficiency;\nuse std::fmt;\n",
            ),
        );
        assert!(check_layering(&graph).is_empty());
    }
}
