//! A minimal TOML subset reader for `paper-constants.toml`.
//!
//! Supports exactly what the manifest needs: `[section]` headers,
//! `key = value` pairs with string, number and number-array values, and
//! `#` comments. Sections and keys keep file order so diagnostics are
//! deterministic. Anything outside this subset is a parse error — the
//! manifest is part of the CI gate and should fail loudly, not
//! approximately.

/// A manifest value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A number (ints are widened to `f64`; manifest quantities are far
    /// below 2^53 so the widening is exact).
    Num(f64),
    /// An array of numbers.
    Arr(Vec<f64>),
}

/// One `[section]` with its key/value pairs in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// The header name.
    pub name: String,
    /// 1-indexed line of the header.
    pub line: usize,
    /// Key/value pairs in file order.
    pub pairs: Vec<(String, Value)>,
}

/// Parses the manifest subset.
///
/// # Errors
///
/// Returns `line number + description` for the first construct outside
/// the subset.
pub fn parse(text: &str) -> Result<Vec<Section>, String> {
    let mut sections: Vec<Section> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .ok_or(format!("line {line_no}: unterminated section header"))?
                .trim();
            if name.is_empty() {
                return Err(format!("line {line_no}: empty section name"));
            }
            sections.push(Section {
                name: name.to_owned(),
                line: line_no,
                pairs: Vec::new(),
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(format!("line {line_no}: expected `key = value`"))?;
        let section = sections
            .last_mut()
            .ok_or(format!("line {line_no}: key before any [section]"))?;
        section.pairs.push((
            key.trim().to_owned(),
            parse_value(value.trim()).map_err(|e| format!("line {line_no}: {e}"))?,
        ));
    }
    Ok(sections)
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if let Some(inner) = text.strip_prefix('"') {
        let body = inner
            .strip_suffix('"')
            .ok_or("unterminated string".to_owned())?;
        if body.contains('"') || body.contains('\\') {
            return Err("escapes in strings are outside the subset".to_owned());
        }
        return Ok(Value::Str(body.to_owned()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let body = inner
            .strip_suffix(']')
            .ok_or("unterminated array".to_owned())?
            .trim();
        let mut items = Vec::new();
        if !body.is_empty() {
            for item in body.split(',') {
                items.push(parse_num(item.trim())?);
            }
        }
        return Ok(Value::Arr(items));
    }
    Ok(Value::Num(parse_num(text)?))
}

fn parse_num(text: &str) -> Result<f64, String> {
    match text.parse::<f64>() {
        Ok(x) if x.is_finite() => Ok(x),
        _ => Err(format!("bad number `{text}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_manifest_shapes() {
        let text = "\n# top comment\n[efficiency]\npath = \"crates/fuelcell/src/efficiency.rs\"\nalpha = 0.45 # Equation 4\ncells = 20\n\n[dvs]\nspeeds = [0.2, 0.4, 1.0]\n";
        let sections = parse(text).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].name, "efficiency");
        assert_eq!(sections[0].line, 3);
        assert_eq!(
            sections[0].pairs,
            vec![
                (
                    "path".to_owned(),
                    Value::Str("crates/fuelcell/src/efficiency.rs".to_owned())
                ),
                ("alpha".to_owned(), Value::Num(0.45)),
                ("cells".to_owned(), Value::Num(20.0)),
            ]
        );
        assert_eq!(
            sections[1].pairs,
            vec![("speeds".to_owned(), Value::Arr(vec![0.2, 0.4, 1.0]))]
        );
    }

    #[test]
    fn rejects_out_of_subset_constructs() {
        assert!(parse("key = 1").is_err(), "key before section");
        assert!(parse("[s]\nkey 1").is_err(), "missing equals");
        assert!(parse("[s]\nkey = {a = 1}").is_err(), "inline table");
        assert!(parse("[broken\nkey = 1").is_err(), "bad header");
    }
}
