//! Determinism-taint dataflow: nondeterminism must not reach artifact
//! sinks un-laundered.
//!
//! The repo's byte-identical-artifact contract (shard spill, resume
//! diffs, BENCH payloads, CI double-run gates) holds only if nothing
//! scheduling- or environment-dependent flows into the serialized
//! bytes. This pass marks the classic sources — wall-clock reads,
//! thread identity, hash-order iteration, environment reads, unseeded
//! RNG, channel arrival order — follows them through `let`-bindings and
//! mutating statements inside each function body, and flags any tainted
//! value that reaches an artifact sink (a serialize/write/digest call
//! in one of the [`SINK_FILES`]) without passing through an explicit
//! launder (`sort*`, a `BTree*` collection, or the `canonical`/
//! `deterministic_json` masking idiom) first.
//!
//! The analysis is per-function-body and conservative, but no longer
//! stops at call boundaries: when a [`SummaryContext`] is supplied,
//! a call that *resolves* (see
//! [`CallGraph::resolve`](crate::callgraph::CallGraph::resolve)) to a
//! function whose summary returns nondeterminism acts as a source at
//! the call site, and a resolved call to a laundering function (one
//! whose body sorts or builds a `BTree*`) cleans the segment exactly
//! like an inline sort. Unresolvable calls contribute nothing, so
//! without a context — or on code the resolver cannot see through —
//! the pass behaves exactly like its old per-function self, and
//! everything it reports is a flow a reviewer can confirm by reading
//! the implicated bodies.

use std::collections::BTreeMap;

use fcdpm_lint::{Finding, Scan};

use crate::callgraph;
use crate::summaries::SummaryContext;
use crate::syntax;
use crate::AnalyzeRule;

/// The files whose writers feed committed or diffed artifacts: the
/// runner/grid manifest writers, the grid engine's `aggregate.json` and
/// shard spill, the BENCH payload builder, and the FNV digest folds
/// that key resume caches.
pub const SINK_FILES: [&str; 6] = [
    "crates/bench/src/harness.rs",
    "crates/grid/src/engine.rs",
    "crates/grid/src/gen.rs",
    "crates/grid/src/manifest.rs",
    "crates/runner/src/manifest.rs",
    "crates/runner/src/spec.rs",
];

/// Nondeterminism sources: `(needle, what the taint carries)`.
/// Word-delimited needles; matched against cleaned text, so strings and
/// comments never trip them.
const SOURCES: [(&str, &str); 11] = [
    ("SystemTime", "wall-clock time"),
    ("Instant", "wall-clock time"),
    ("ThreadId", "thread identity"),
    ("thread_rng", "unseeded RNG"),
    ("from_entropy", "unseeded RNG"),
    ("HashMap", "hash-order iteration"),
    ("HashSet", "hash-order iteration"),
    ("var_os", "environment read"),
    ("vars_os", "environment read"),
    ("recv", "channel arrival order"),
    ("recv_timeout", "channel arrival order"),
];

/// Sources that need substring (not word) matching because they span
/// path separators.
const PATH_SOURCES: [(&str, &str); 3] = [
    ("thread::current", "thread identity"),
    ("env::var", "environment read"),
    ("env::vars", "environment read"),
];

/// Artifact-sink call needles (substring-matched; all end in `(` so an
/// occurrence is always a call site).
const SINKS: [&str; 7] = [
    "serde_json::to_string",
    "to_pretty_json(",
    "deterministic_json(",
    "write_shard(",
    "fs::write(",
    "write_all(",
    "fnv1a(",
];

/// Laundering idioms: a segment containing one of these consumes the
/// taint of every variable it mentions (explicit reordering or
/// canonical masking restores determinism).
const LAUNDERS: [&str; 8] = [
    ".sort(",
    ".sort_by(",
    ".sort_by_key(",
    ".sort_unstable(",
    ".sort_unstable_by(",
    ".sort_unstable_by_key(",
    "BTreeMap",
    "BTreeSet",
];

/// `deterministic_json` masks scheduling fields before serializing, and
/// the digest fns assign through a `canonical` clone — both are
/// laundered sinks, not violations, when they appear *as the sink*.
const LAUNDERED_SINKS: [&str; 2] = ["deterministic_json(", "canonical"];

/// Does `text` contain one of the explicit laundering idioms?
pub(crate) fn is_laundering(text: &str) -> bool {
    LAUNDERS.iter().any(|l| text.contains(l))
}

/// Direct source kinds present in `segment` (word- and path-matched).
pub(crate) fn source_kinds(segment: &str) -> Vec<&'static str> {
    let mut kinds = Vec::new();
    for (needle, kind) in SOURCES {
        if !syntax::word_occurrences(segment, needle).is_empty() {
            kinds.push(kind);
        }
    }
    for (needle, kind) in PATH_SOURCES {
        if segment.contains(needle) {
            kinds.push(kind);
        }
    }
    kinds.dedup();
    kinds
}

/// The names bound by a `let` pattern span (everything between `let`
/// and `=`): each lowercase-leading identifier that is not a keyword.
/// Over-approximating binders (e.g. a primitive type ascription) only
/// widens taint, never hides it.
fn pattern_binders(pattern: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in pattern.chars().chain(" ".chars()) {
        if syntax::is_ident_char(c) {
            cur.push(c);
        } else {
            if !cur.is_empty()
                && cur
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
                && !matches!(cur.as_str(), "let" | "mut" | "ref" | "_")
            {
                out.push(std::mem::take(&mut cur));
            }
            cur.clear();
        }
    }
    out
}

/// Runs the pass over one file. Only [`SINK_FILES`] can produce
/// findings (that is where artifact bytes are born); other paths return
/// empty immediately, so the workspace walk stays cheap. With a
/// [`SummaryContext`], resolved helper calls contribute their
/// summarized effects (taint sources and launders across function and
/// file boundaries); with `None` the pass is purely per-function.
#[must_use]
pub fn check_file(rel_path: &str, scan: &Scan, ctx: Option<&SummaryContext>) -> Vec<Finding> {
    if !SINK_FILES.contains(&rel_path) {
        return Vec::new();
    }
    let cleaned = &scan.cleaned;
    let mut findings = Vec::new();

    for (fn_off, body) in syntax::function_bodies(cleaned) {
        if scan.is_test_line(scan.line_of(fn_off)) {
            continue;
        }
        // variable -> the taint kind it carries
        let mut tainted: BTreeMap<String, &'static str> = BTreeMap::new();

        for (seg_start, seg_range) in syntax::segments(cleaned, &body) {
            let segment = &cleaned[seg_range];

            // For `let` segments, taint is judged on the value side only
            // — a clean re-binding must not see its own binder name.
            let let_off = syntax::word_occurrences(segment, "let").first().copied();
            let value_text = match let_off {
                Some(off) => {
                    let after_let = &segment[off..];
                    after_let.find('=').map_or("", |eq| &after_let[eq + 1..])
                }
                None => segment,
            };

            // Resolved helper calls contribute their summaries: one
            // that launders cleans the segment like an inline sort; one
            // whose return carries taint is a source at the call site.
            let mut via_call: Option<(String, &'static str)> = None;
            let mut call_launders = false;
            if let Some(ctx) = ctx {
                for name in callgraph::call_names(segment) {
                    let Some((_, summary)) = ctx.resolve(rel_path, &name) else {
                        continue;
                    };
                    if summary.launders {
                        call_launders = true;
                    } else if let Some(kind) = summary.returns_taint {
                        if via_call.is_none() {
                            via_call = Some((name, kind));
                        }
                    }
                }
            }

            // What taint does this segment see? Direct sources count
            // anywhere (a `HashMap` type ascription sits left of the
            // `=`); variable references only on the value side.
            let direct = source_kinds(segment);
            let mut via_var: Option<(String, &'static str)> = None;
            for (var, kind) in &tainted {
                if !syntax::word_occurrences(value_text, var).is_empty() {
                    via_var = Some((var.clone(), kind));
                    break;
                }
            }
            let seg_taint: Option<&'static str> = direct
                .first()
                .copied()
                .or(via_var.as_ref().map(|&(_, k)| k))
                .or(via_call.as_ref().map(|&(_, k)| k));

            // Laundering consumes the taint of every variable mentioned.
            if call_launders || LAUNDERS.iter().any(|l| segment.contains(l)) {
                let cleared: Vec<String> = tainted
                    .keys()
                    .filter(|var| !syntax::word_occurrences(segment, var).is_empty())
                    .cloned()
                    .collect();
                for var in cleared {
                    tainted.remove(&var);
                }
                continue;
            }

            // Sink check: a serialize/write/digest call fed by taint.
            if let Some(kind) = seg_taint {
                if let Some((sink, sink_rel)) = SINKS
                    .iter()
                    .filter_map(|s| segment.find(s).map(|at| (*s, at)))
                    .min_by_key(|&(_, at)| at)
                {
                    let masked = LAUNDERED_SINKS.iter().any(|l| segment.contains(l));
                    if !masked {
                        let line = scan.line_of(seg_start + sink_rel);
                        if !scan.is_test_line(line) {
                            let sink_name = sink.trim_end_matches('(');
                            let message = match (&via_var, &via_call) {
                                (Some((var, _)), _) if direct.is_empty() => format!(
                                    "`{var}` carries {kind} and reaches artifact sink \
                                     `{sink_name}` without an intervening sort/canonicalize"
                                ),
                                (None, Some((callee, _))) if direct.is_empty() => format!(
                                    "`{callee}()` returns {kind} (through its body or \
                                     callees) and reaches artifact sink `{sink_name}` \
                                     without an intervening sort/canonicalize"
                                ),
                                _ => format!(
                                    "{kind} flows directly into artifact sink `{sink_name}`"
                                ),
                            };
                            findings.push(Finding {
                                rule: AnalyzeRule::DeterminismTaint.id(),
                                path: rel_path.to_owned(),
                                line,
                                message,
                            });
                        }
                    }
                }
            }

            // Propagate taint through bindings and mutations.
            let trimmed = segment.trim_start();
            if let Some(let_off) = let_off {
                let after_let = &segment[let_off..];
                let pattern_end = after_let.find('=').unwrap_or(after_let.len());
                for binder in pattern_binders(&after_let[..pattern_end]) {
                    match seg_taint {
                        // A clean re-binding clears the old taint too.
                        Some(kind) => {
                            tainted.insert(binder, kind);
                        }
                        None => {
                            tainted.remove(&binder);
                        }
                    }
                }
            } else if let Some(kind) = seg_taint {
                // `x = ...`, `x += ...`, `x.push(...)`, `x.insert(...)`:
                // a tainted right-hand side taints the mutated variable.
                let target: String = trimmed
                    .chars()
                    .take_while(|&c| syntax::is_ident_char(c))
                    .collect();
                if !target.is_empty() {
                    let rest = &trimmed[target.len()..];
                    let mutates = rest.trim_start().starts_with('=')
                        && !rest.trim_start().starts_with("==")
                        || rest.trim_start().starts_with("+=")
                        || rest.starts_with(".push(")
                        || rest.starts_with(".insert(")
                        || rest.starts_with(".extend(");
                    if mutates {
                        tainted.insert(target, kind);
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const SINK: &str = "crates/grid/src/manifest.rs";

    fn run_on(src: &str) -> Vec<Finding> {
        check_file(SINK, &Scan::new(src), None)
    }

    fn context(files: &[(&str, &str)]) -> SummaryContext {
        let mut defs = Vec::new();
        for (rel, src) in files {
            defs.extend(callgraph::function_defs(rel, &Scan::new(src)));
        }
        SummaryContext::build(callgraph::CallGraph::from_defs(defs))
    }

    #[test]
    fn non_sink_files_are_skipped() {
        let src = "fn f() { let t = Instant::now(); fs::write(p, t); }";
        assert!(check_file("crates/sim/src/lib.rs", &Scan::new(src), None).is_empty());
    }

    #[test]
    fn helper_taint_crosses_the_call_boundary_with_a_context() {
        let helper = "fn current_stamp() -> u64 { let t = Instant::now(); pack(t) }";
        let caller = "fn write_manifest(path: &Path) {\n    let stamp = current_stamp();\n    fs::write(path, render(stamp));\n}\n";
        let scan = Scan::new(caller);
        // The per-function pass provably misses the flow...
        assert!(check_file(SINK, &scan, None).is_empty());
        // ...and catches it once summaries resolve the helper.
        let ctx = context(&[("crates/grid/src/util.rs", helper), (SINK, caller)]);
        let findings = check_file(SINK, &scan, Some(&ctx));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("wall-clock time"));
        assert!(findings[0].message.contains("stamp"));
    }

    #[test]
    fn laundering_helpers_clean_the_flow_with_a_context() {
        let helper =
            "fn arrivals(rx: &Receiver<u64>) -> Vec<u64> { rx.recv().into_iter().collect() }\n\
                      fn ordered(mut v: Vec<u64>) -> Vec<u64> { v.sort(); v }";
        let caller = "fn write_manifest(path: &Path, rx: &Receiver<u64>) {\n    let rows = arrivals(rx);\n    let rows = ordered(rows);\n    fs::write(path, render(&rows));\n}\n";
        let scan = Scan::new(caller);
        let ctx = context(&[("crates/grid/src/util.rs", helper), (SINK, caller)]);
        assert!(check_file(SINK, &scan, Some(&ctx)).is_empty());
    }

    #[test]
    fn direct_source_into_sink_is_flagged() {
        let src = "fn f() {\n    let stamp = SystemTime::now();\n    fs::write(path, format!(\"{:?}\", stamp));\n}\n";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("wall-clock time"));
    }

    #[test]
    fn sort_launders_the_taint() {
        let src = "fn f() {\n    let mut rows: Vec<_> = rx.iter().map(|r| r.recv()).collect();\n    rows.sort_by_key(|r| r.index);\n    fs::write(path, render(&rows));\n}\n";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn hash_order_reaching_a_digest_fold_is_flagged() {
        let src = "fn f() {\n    let index: HashMap<u64, u64> = build();\n    let key = fnv1a(pack(&index));\n}\n";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("hash-order iteration"));
        assert!(findings[0].message.contains("fnv1a"));
    }

    #[test]
    fn canonical_masking_counts_as_laundered() {
        let src = "fn digest(&self) -> u64 {\n    let mut canonical = self.clone();\n    canonical.name = None;\n    fnv1a(serde_json::to_string(&canonical).unwrap_or_default().as_bytes())\n}\n";
        // `canonical` is not tainted at all here, but even a tainted
        // input through the canonical idiom must stay clean.
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn clean_rebinding_clears_old_taint() {
        let src = "fn f() {\n    let x = Instant::now();\n    let x = 5u64;\n    fs::write(path, x.to_string());\n}\n";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = SystemTime::now(); fs::write(p, fmt(t)); }\n}\n";
        assert!(run_on(src).is_empty());
    }
}
