//! Digest-stability check: every serde field of a digest-keyed struct
//! is either folded into the digest or explicitly masked.
//!
//! Resume caches, run identities and the bench payload are all keyed by
//! FNV-1a digests of serialized specs ([`GridSpec::digest`] masks the
//! informational `name`; `spec_digest` hashes a [`JobSpec`] whole).
//! Adding a field to either struct silently changes — or, with
//! `#[serde(skip)]`, silently *fails* to change — every digest, which
//! aliases or orphans existing run directories. This pass makes that
//! decision explicit: each digest-keyed struct carries a pair of const
//! manifests (`*_DIGEST_FIELDS`, `*_DIGEST_MASK`) next to its
//! definition, and the check statically requires
//!
//! * declared fields = folded ∪ masked, with the two lists disjoint,
//! * every masked field is actually neutralized in the digest fn body
//!   (a `canonical.<field> = …` assignment), and nothing else is.
//!
//! So a new field fails `fcdpm analyze` until its author decides — in
//! the diff, reviewably — whether it is part of the cache key.
//!
//! [`GridSpec::digest`]: fcdpm_grid::GridSpec::digest

use fcdpm_lint::{Finding, Scan};

use crate::syntax;
use crate::AnalyzeRule;

/// One digest-keyed struct the workspace must keep stable.
#[derive(Debug)]
pub struct DigestKeyed {
    /// Workspace-relative file holding the struct and its manifests.
    pub file: &'static str,
    /// Struct name.
    pub strukt: &'static str,
    /// Const listing the fields folded into the digest.
    pub fields_const: &'static str,
    /// Const listing the fields masked out before hashing.
    pub mask_const: &'static str,
    /// The masking digest fn in the same file (`None` when the struct
    /// is hashed whole and the mask list must stay empty).
    pub digest_fn: Option<&'static str>,
}

/// The catalogue of digest-keyed structs (grows with every new digest).
pub const DIGEST_KEYED: [DigestKeyed; 2] = [
    DigestKeyed {
        file: "crates/grid/src/gen.rs",
        strukt: "GridSpec",
        fields_const: "GRIDSPEC_DIGEST_FIELDS",
        mask_const: "GRIDSPEC_DIGEST_MASK",
        digest_fn: Some("digest"),
    },
    DigestKeyed {
        file: "crates/runner/src/spec.rs",
        strukt: "JobSpec",
        fields_const: "JOBSPEC_DIGEST_FIELDS",
        mask_const: "JOBSPEC_DIGEST_MASK",
        digest_fn: None,
    },
];

/// Declared field names of `struct {name} { … }` in cleaned text, with
/// the struct's line.
fn struct_fields(cleaned: &str, name: &str, scan: &Scan) -> Option<(usize, Vec<String>)> {
    let at = syntax::word_occurrences(cleaned, name)
        .into_iter()
        .find(|&at| cleaned[..at].trim_end().ends_with("struct"))?;
    let open = at + cleaned[at..].find('{')?;
    let close = syntax::matching(cleaned, open, b'{', b'}')?;
    let body = &cleaned[open + 1..close];

    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut decl = String::new();
    for c in body.chars().chain(",".chars()) {
        match c {
            '{' | '(' | '[' | '<' => depth += 1,
            '}' | ')' | ']' | '>' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                if let Some(field) = decl_field(&decl) {
                    fields.push(field);
                }
                decl.clear();
                continue;
            }
            _ => {}
        }
        decl.push(c);
    }
    Some((scan.line_of(at), fields))
}

/// The field name of one struct-body declaration (attributes already
/// blank in cleaned text still carry their `#[…]` skeleton — stripped
/// here), or `None` for empty/attr-only fragments.
fn decl_field(decl: &str) -> Option<String> {
    let mut rest = decl.trim();
    while rest.starts_with("#[") {
        let close = syntax::matching(rest, 1, b'[', b']')?;
        rest = rest[close + 1..].trim_start();
    }
    let lhs = rest.split(':').next()?.trim();
    let name: String = lhs
        .rsplit(|c: char| !syntax::is_ident_char(c))
        .next()?
        .to_owned();
    if name.is_empty() || lhs.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// The string entries of `const {name}: &[&str] = &[…];`, parsed from
/// the *raw* source (cleaned text blanks the very strings we need).
fn const_entries(source: &str, name: &str) -> Option<(usize, Vec<String>)> {
    let at = syntax::word_occurrences(source, name)
        .into_iter()
        .find(|&at| source[..at].trim_end().ends_with("const"))?;
    let eq = at + source[at..].find('=')?;
    let open = eq + source[eq..].find('[')?;
    let close = syntax::matching(source, open, b'[', b']')?;
    let mut entries = Vec::new();
    let mut rest = &source[open + 1..close];
    while let Some(q1) = rest.find('"') {
        let Some(q2) = rest[q1 + 1..].find('"') else {
            break;
        };
        entries.push(rest[q1 + 1..q1 + 1 + q2].to_owned());
        rest = &rest[q1 + q2 + 2..];
    }
    Some((at, entries))
}

/// Field names assigned through the `canonical` clone inside the digest
/// fn's body (`canonical.name = None;` ⇒ `name`).
fn masked_in_body(cleaned: &str, digest_fn: &str) -> Option<Vec<String>> {
    let at = syntax::word_occurrences(cleaned, digest_fn)
        .into_iter()
        .find(|&at| cleaned[..at].trim_end().ends_with("fn"))?;
    let open = at + cleaned[at..].find('{')?;
    let close = syntax::matching(cleaned, open, b'{', b'}')?;
    let body = &cleaned[open + 1..close];
    let mut masked = Vec::new();
    for off in syntax::word_occurrences(body, "canonical") {
        let rest = &body[off + "canonical".len()..];
        if let Some(field_part) = rest.strip_prefix('.') {
            let field: String = field_part
                .chars()
                .take_while(|&c| syntax::is_ident_char(c))
                .collect();
            if field_part[field.len()..].trim_start().starts_with('=') && !field.is_empty() {
                masked.push(field);
            }
        }
    }
    Some(masked)
}

/// Runs the check over one file (raw source *and* scan: the const
/// manifests live in string literals the scan blanks out).
#[must_use]
pub fn check_file(rel_path: &str, source: &str, scan: &Scan) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rule = AnalyzeRule::DigestStability.id();
    let mut push = |line: usize, message: String| {
        if !scan.is_suppressed(rule, line) {
            findings.push(Finding {
                rule,
                path: rel_path.to_owned(),
                line,
                message,
            });
        }
    };

    for keyed in DIGEST_KEYED.iter().filter(|k| k.file == rel_path) {
        let Some((struct_line, fields)) = struct_fields(&scan.cleaned, keyed.strukt, scan) else {
            push(
                1,
                format!(
                    "digest-keyed struct `{}` not found (update the digest-stability catalogue \
                     if it moved)",
                    keyed.strukt
                ),
            );
            continue;
        };
        let folded = const_entries(source, keyed.fields_const);
        let masked = const_entries(source, keyed.mask_const);
        let (Some((fields_at, folded)), Some((_, masked))) = (folded, masked) else {
            push(
                struct_line,
                format!(
                    "`{}` needs digest manifests `{}` and `{}` next to its definition",
                    keyed.strukt, keyed.fields_const, keyed.mask_const
                ),
            );
            continue;
        };
        let manifest_line = scan.line_of(fields_at);

        for field in &fields {
            match (folded.contains(field), masked.contains(field)) {
                (false, false) => push(
                    struct_line,
                    format!(
                        "field `{field}` of `{}` is neither folded into the digest \
                         (`{}`) nor masked (`{}`); decide before it silently aliases \
                         or orphans resume caches",
                        keyed.strukt, keyed.fields_const, keyed.mask_const
                    ),
                ),
                (true, true) => push(
                    manifest_line,
                    format!(
                        "field `{field}` of `{}` is listed as both folded and masked",
                        keyed.strukt
                    ),
                ),
                _ => {}
            }
        }
        for entry in folded.iter().chain(&masked) {
            if !fields.contains(entry) {
                push(
                    manifest_line,
                    format!(
                        "digest manifest entry `{entry}` does not name a field of `{}`",
                        keyed.strukt
                    ),
                );
            }
        }

        match keyed.digest_fn {
            Some(digest_fn) => {
                let Some(assigned) = masked_in_body(&scan.cleaned, digest_fn) else {
                    push(
                        manifest_line,
                        format!(
                            "masking digest fn `{digest_fn}` for `{}` not found",
                            keyed.strukt
                        ),
                    );
                    continue;
                };
                for field in &masked {
                    if !assigned.contains(field) {
                        push(
                            manifest_line,
                            format!(
                                "`{digest_fn}()` does not neutralize masked field `{field}` \
                                 of `{}` (no `canonical.{field} = …` assignment)",
                                keyed.strukt
                            ),
                        );
                    }
                }
                for field in &assigned {
                    if !masked.contains(field) {
                        push(
                            manifest_line,
                            format!(
                                "`{digest_fn}()` masks `{field}` which `{}` does not list",
                                keyed.mask_const
                            ),
                        );
                    }
                }
            }
            None => {
                for field in &masked {
                    push(
                        manifest_line,
                        format!(
                            "`{}` is hashed whole, but `{}` masks `{field}`",
                            keyed.strukt, keyed.mask_const
                        ),
                    );
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = r#"
pub const GRIDSPEC_DIGEST_FIELDS: &[&str] =
    &["seeds", "workloads", "policies", "faults", "capacities_mamin", "resilient"];
pub const GRIDSPEC_DIGEST_MASK: &[&str] = &["name"];

pub struct GridSpec {
    pub name: Option<String>,
    pub seeds: SeedAxis,
    pub workloads: Vec<WorkloadKind>,
    pub policies: Vec<PolicySpec>,
    #[serde(default)]
    pub faults: Option<Vec<FaultPreset>>,
    pub capacities_mamin: Option<Vec<f64>>,
    pub resilient: Option<Vec<bool>>,
}

impl GridSpec {
    pub fn digest(&self) -> u64 {
        let mut canonical = self.clone();
        canonical.name = None;
        fnv1a(serde_json::to_string(&canonical).unwrap_or_default().as_bytes())
    }
}
"#;

    fn run_on(src: &str) -> Vec<Finding> {
        check_file("crates/grid/src/gen.rs", src, &Scan::new(src))
    }

    #[test]
    fn complete_partition_is_clean() {
        assert!(run_on(OK).is_empty(), "{:?}", run_on(OK));
    }

    #[test]
    fn unlisted_field_is_flagged() {
        let src = OK.replace(
            "pub resilient: Option<Vec<bool>>,",
            "pub resilient: Option<Vec<bool>>,\n    pub priority: Option<u8>,",
        );
        let findings = run_on(&src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`priority`"));
        assert!(findings[0].message.contains("neither folded"));
    }

    #[test]
    fn removing_the_name_mask_is_flagged_twice() {
        // `name` leaves the mask list: the field is now unlisted AND the
        // digest body's assignment is unsanctioned.
        let src = OK.replace(r#"&["name"]"#, "&[]");
        let findings = run_on(&src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.message.contains("neither folded")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("masks `name` which")));
    }

    #[test]
    fn stale_manifest_entry_is_flagged() {
        let src = OK.replace("pub seeds: SeedAxis,\n", "");
        let findings = run_on(&src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0]
            .message
            .contains("`seeds` does not name a field"));
    }

    #[test]
    fn unneutralized_mask_is_flagged() {
        let src = OK.replace("        canonical.name = None;\n", "");
        let findings = run_on(&src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("does not neutralize"));
    }

    #[test]
    fn other_files_are_ignored() {
        assert!(check_file("crates/sim/src/lib.rs", OK, &Scan::new(OK)).is_empty());
    }
}
