//! Small lexical helpers shared by the third-layer passes
//! ([`taint`](crate::taint), [`locks`](crate::locks),
//! [`digest`](crate::digest)).
//!
//! Everything here operates on a [`Scan`](fcdpm_lint::Scan)'s `cleaned`
//! text — comments, strings and char literals already blanked, line
//! structure preserved — so delimiter matching and token search never
//! trip over quoted braces.

use std::ops::Range;

/// True for characters that may appear inside a Rust identifier.
pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of every occurrence of `needle`, token-delimited on
/// each side whose edge is an identifier character (the lint's
/// `token_occurrences` only guards the left edge, which is wrong for
/// short needles like `fn` that prefix longer identifiers). Needles
/// edged by punctuation (`.lock().unwrap()`) match verbatim there.
pub(crate) fn word_occurrences(text: &str, needle: &str) -> Vec<usize> {
    let guard_left = needle.chars().next().is_some_and(is_ident_char);
    let guard_right = needle.chars().next_back().is_some_and(is_ident_char);
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = text[from..].find(needle) {
        let at = from + rel;
        from = at + needle.len().max(1);
        let left_ok =
            !guard_left || at == 0 || !text[..at].chars().next_back().is_some_and(is_ident_char);
        let end = at + needle.len();
        let right_ok = !guard_right
            || end >= text.len()
            || !text[end..].chars().next().is_some_and(is_ident_char);
        if left_ok && right_ok {
            hits.push(at);
        }
    }
    hits
}

/// Offset of the delimiter matching the opener at `open` (which must
/// hold `openc`), honouring nesting. `None` when unbalanced.
pub(crate) fn matching(text: &str, open: usize, openc: u8, closec: u8) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == openc {
            depth += 1;
        } else if b == closec {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Body ranges (between the braces, exclusive) of every *top-level*
/// `fn` in `cleaned`, in source order, paired with the offset of the
/// `fn` keyword. Nested `fn` items stay inside their parent's range.
pub(crate) fn function_bodies(cleaned: &str) -> Vec<(usize, Range<usize>)> {
    let mut out: Vec<(usize, Range<usize>)> = Vec::new();
    for off in word_occurrences(cleaned, "fn") {
        if out.last().is_some_and(|(_, body)| off < body.end) {
            continue; // nested item — covered by the enclosing body walk
        }
        let rest = &cleaned[off..];
        let Some(rel_stop) = rest.find(['{', ';']) else {
            continue;
        };
        if rest.as_bytes()[rel_stop] != b'{' {
            continue; // trait method / extern declaration without a body
        }
        let open = off + rel_stop;
        let Some(close) = matching(cleaned, open, b'{', b'}') else {
            continue;
        };
        out.push((off, open + 1..close));
    }
    out
}

/// The statement-ish segments of a function body: spans split on every
/// `;` regardless of nesting depth. Coarse, but it keeps multi-line
/// struct literals (no internal `;`) in one piece, which is what the
/// taint pass needs; a closure body's `;` splits early and only costs
/// precision, never soundness of what *is* reported.
pub(crate) fn segments(cleaned: &str, body: &Range<usize>) -> Vec<(usize, Range<usize>)> {
    let mut out = Vec::new();
    let mut start = body.start;
    for (i, b) in cleaned[body.start..body.end].bytes().enumerate() {
        if b == b';' {
            let at = body.start + i;
            out.push((start, start..at));
            start = at + 1;
        }
    }
    if start < body.end {
        out.push((start, start..body.end));
    }
    out
}

/// The identifier ending immediately before byte offset `end` (used to
/// recover the receiver chain of a method call). Includes `.`-joined
/// and `::`-joined path segments and `[...]` index suffixes, so
/// `self.deques[v]` comes back whole.
pub(crate) fn receiver_before(text: &str, end: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let mut i = end;
    while i > 0 {
        let c = bytes[i - 1];
        if c == b']' {
            // Skip the whole index expression.
            let open = text[..i].rfind('[')?;
            i = open;
        } else if is_ident_char(c as char) || c == b'.' || c == b':' {
            i -= 1;
        } else {
            break;
        }
    }
    while i < end && matches!(bytes[i], b'.' | b':') {
        i += 1;
    }
    if i >= end {
        None
    } else {
        Some(&text[i..end])
    }
}

/// The identifier starting at the first non-whitespace byte at or after
/// `from` (used to read the name out of `fn <name>` and `impl .. for
/// <Type>` headers). Empty when the next token is not an identifier.
pub(crate) fn ident_after(text: &str, from: usize) -> &str {
    let rest = &text[from..];
    let start = rest.len() - rest.trim_start().len();
    let tail = &rest[start..];
    let end = tail
        .char_indices()
        .find(|&(_, c)| !is_ident_char(c))
        .map_or(tail.len(), |(i, _)| i);
    &tail[..end]
}

/// Method names that mutate their receiver in place — the workspace's
/// collection/option idioms, used to spot `self.<field>.<mutator>(..)`
/// chains without type information.
const MUTATOR_METHODS: [&str; 12] = [
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "insert",
    "extend",
    "remove",
    "clear",
    "get_or_insert",
    "replace",
];

/// Does `text` mutate `self` state? True for a `self.<chain> = ..`
/// (or compound) assignment, and for a `self.<chain>.<mutator>(..)`
/// call on a known in-place mutator. Plain field reads, comparisons
/// (`==`), match arms (`=>`) and immutable method calls stay false.
pub(crate) fn self_mutation(text: &str) -> bool {
    let bytes = text.as_bytes();
    for off in word_occurrences(text, "self") {
        let mut i = off + "self".len();
        if bytes.get(i) != Some(&b'.') {
            continue;
        }
        // Walk the `.field.field` chain, remembering the last segment so
        // a trailing call can be checked against the mutator list.
        let mut last_seg = i + 1;
        i += 1;
        while i < bytes.len() {
            match bytes[i] {
                b'.' => {
                    last_seg = i + 1;
                    i += 1;
                }
                c if is_ident_char(c as char) => i += 1,
                _ => break,
            }
        }
        if i >= bytes.len() || last_seg >= i {
            continue;
        }
        if bytes[i] == b'(' {
            if MUTATOR_METHODS.contains(&&text[last_seg..i]) {
                return true;
            }
            continue;
        }
        let rest = text[i..].trim_start();
        let plain_assign =
            rest.starts_with('=') && !rest.starts_with("==") && !rest.starts_with("=>");
        let compound = ["+=", "-=", "*=", "/=", "%=", "|=", "&=", "^="]
            .iter()
            .any(|op| rest.starts_with(op));
        if plain_assign || compound {
            return true;
        }
    }
    false
}

/// Collapses every `[...]` index in a lock-site expression to `[_]` and
/// strips borrows/whitespace, so `&deques[victim]` and `deques[worker]`
/// fall into the same lock *class* (`deques[_]`) for order tracking.
pub(crate) fn normalize_lock_class(expr: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in expr.chars() {
        match c {
            '[' => {
                depth += 1;
                if depth == 1 {
                    out.push_str("[_");
                }
            }
            ']' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(']');
                }
            }
            _ if depth > 0 => {}
            '&' | ' ' | '\t' | '\n' => {}
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_occurrences_need_both_boundaries() {
        let text = "fn fnv1a(x: u64) { myfn(); fn inner() {} }";
        let hits = word_occurrences(text, "fn");
        assert_eq!(hits, vec![0, 27], "fnv1a and myfn must not match");
    }

    #[test]
    fn top_level_bodies_swallow_nested_items() {
        let src = "fn outer() { let a = 1; fn inner() { let b = 2; } }\nfn second() {}";
        let bodies = function_bodies(src);
        assert_eq!(bodies.len(), 2);
        assert!(src[bodies[0].1.clone()].contains("inner"));
        assert_eq!(&src[bodies[1].1.clone()], "");
    }

    #[test]
    fn segments_split_on_every_semicolon() {
        let src = "fn f() { let a = X { p: 1, q: 2 }; a.sort(); }";
        let body = function_bodies(src).remove(0).1;
        let segs = segments(src, &body);
        assert_eq!(segs.len(), 3);
        assert!(src[segs[0].1.clone()].contains("X { p: 1, q: 2 }"));
        assert!(src[segs[1].1.clone()].contains("a.sort()"));
    }

    #[test]
    fn self_mutation_distinguishes_writes_from_reads() {
        assert!(self_mutation("self.recharging = true"));
        assert!(self_mutation("self.count += 1"));
        assert!(self_mutation("*self.c_ref.get_or_insert(soc)"));
        assert!(self_mutation("self.seen.push(x)"));
        assert!(!self_mutation("self.range.max()"));
        assert!(!self_mutation("if self.recharging { hi } else { lo }"));
        assert!(!self_mutation("self.capacity * 0.5"));
        assert!(!self_mutation("self.phase == Phase::Idle"));
        assert!(!self_mutation("match self.mode { A => 1, B => 2 }"));
    }

    #[test]
    fn ident_after_reads_the_next_token() {
        assert_eq!(
            ident_after("fn  steady_current(&self)", 2),
            "steady_current"
        );
        assert_eq!(ident_after("for Conv {", 3), "Conv");
        assert_eq!(ident_after("fn (", 2), "");
    }

    #[test]
    fn receivers_and_lock_classes_normalize() {
        let text = "self.deques[victim].lock()";
        let at = text.find(".lock()").unwrap();
        assert_eq!(receiver_before(text, at), Some("self.deques[victim]"));
        assert_eq!(
            normalize_lock_class("self.deques[victim]"),
            "self.deques[_]"
        );
        assert_eq!(normalize_lock_class("&deques[w + 1]"), "deques[_]");
    }
}
