//! Second-stage semantic analysis for the `fcdpm` workspace.
//!
//! Where `fcdpm-lint` does token-level pattern matching file by file,
//! this crate builds workspace-wide context and checks properties the
//! lint cannot see:
//!
//! * [`AnalyzeRule::Layering`] — a cross-crate symbol/module graph from
//!   `use` edges, checked against the intended dependency DAG (physics
//!   below policy below orchestration).
//! * [`AnalyzeRule::UnitDataflow`] — a conservative dataflow lattice
//!   that follows `fcdpm-units` newtypes through `let`-bindings and
//!   arithmetic inside function bodies, flagging dimensional mixes the
//!   signature-level lint cannot reach.
//! * [`AnalyzeRule::PaperConstants`] — every DAC'07 constant recorded in
//!   `paper-constants.toml` must appear verbatim as a literal in the
//!   source file its manifest section names.
//! * [`AnalyzeRule::GridFeasibility`] — committed runner job grids
//!   (`examples/*.json`) are validated against the load-following range
//!   and storage feasibility before any simulation runs.
//!
//! The third layer guards the byte-identical-artifact contract and the
//! lock discipline behind it:
//!
//! * [`AnalyzeRule::DeterminismTaint`] — nondeterminism sources
//!   (wall-clock, thread identity, hash-order iteration, env reads,
//!   unseeded RNG, channel arrival order) must not reach artifact sinks
//!   (manifest/shard/bench writers, FNV digest folds) without an
//!   explicit sort/canonicalize launder ([`taint`]).
//! * [`AnalyzeRule::LockDiscipline`] — a static lock-acquisition-order
//!   graph over every `Mutex` site: cycles (potential deadlock), guards
//!   held across job-closure calls, and poison handling inconsistent
//!   with the `lock_deque` idiom ([`locks`]).
//! * [`AnalyzeRule::DigestStability`] — digest-keyed structs
//!   (`GridSpec`, `JobSpec`) must account for every serde field in an
//!   explicit folded/masked manifest pair, so a new field can never
//!   silently alias or orphan resume caches ([`digest`]).
//!
//! The report/baseline/SARIF machinery is shared with `fcdpm-lint`
//! (identical ledger semantics, disjoint rule catalogue, separate
//! `analyze-baseline.json`), and the same determinism contract holds:
//! findings are sorted by `(path, line, rule, message)` so two runs over
//! the same tree are byte-identical in every output format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod dataflow;
pub mod digest;
pub mod grid;
pub mod locks;
pub mod symbols;
mod syntax;
pub mod taint;
pub mod toml;

use std::fs;
use std::io;
use std::path::Path;

use fcdpm_lint::{json, Baseline, Report, Scan};

pub use constants::MANIFEST_PATH;
pub use grid::PaperParams;
pub use symbols::SymbolGraph;

/// The analysis rule catalogue (disjoint from the lint's [`fcdpm_lint::Rule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzeRule {
    /// Dimensional soundness of arithmetic inside function bodies.
    UnitDataflow,
    /// Cross-crate `use` edges respect the intended dependency layering.
    Layering,
    /// Hard-coded paper constants match `paper-constants.toml`.
    PaperConstants,
    /// Committed job grids are statically feasible.
    GridFeasibility,
    /// Nondeterminism sources must not reach artifact sinks un-laundered.
    DeterminismTaint,
    /// Lock acquisition order, guard scope and poison handling.
    LockDiscipline,
    /// Digest-keyed structs account for every field (folded or masked).
    DigestStability,
}

/// Every rule, in catalogue order.
pub const ALL_RULES: [AnalyzeRule; 7] = [
    AnalyzeRule::UnitDataflow,
    AnalyzeRule::Layering,
    AnalyzeRule::PaperConstants,
    AnalyzeRule::GridFeasibility,
    AnalyzeRule::DeterminismTaint,
    AnalyzeRule::LockDiscipline,
    AnalyzeRule::DigestStability,
];

impl AnalyzeRule {
    /// Stable identifier used in reports, baselines and suppressions.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            AnalyzeRule::UnitDataflow => "unit-dataflow",
            AnalyzeRule::Layering => "layering",
            AnalyzeRule::PaperConstants => "paper-constants",
            AnalyzeRule::GridFeasibility => "grid-feasibility",
            AnalyzeRule::DeterminismTaint => "determinism-taint",
            AnalyzeRule::LockDiscipline => "lock-discipline",
            AnalyzeRule::DigestStability => "digest-stability",
        }
    }

    /// One-line description (also the SARIF rule short description).
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            AnalyzeRule::UnitDataflow => {
                "arithmetic must not mix raw f64 projections or newtypes of distinct dimensions"
            }
            AnalyzeRule::Layering => {
                "cross-crate use edges must follow the workspace dependency DAG"
            }
            AnalyzeRule::PaperConstants => {
                "hard-coded paper constants must match paper-constants.toml"
            }
            AnalyzeRule::GridFeasibility => {
                "committed job grids must be statically feasible for the paper hardware"
            }
            AnalyzeRule::DeterminismTaint => {
                "nondeterminism sources must not reach artifact sinks without a sort/canonicalize"
            }
            AnalyzeRule::LockDiscipline => {
                "lock acquisition order must be acyclic, guards must not cover job closures, \
                 and poison handling must match the lock_deque idiom"
            }
            AnalyzeRule::DigestStability => {
                "every field of a digest-keyed struct must be explicitly folded or masked"
            }
        }
    }
}

/// The `(id, summary)` pairs for SARIF output.
#[must_use]
pub fn rule_catalogue() -> Vec<(&'static str, &'static str)> {
    ALL_RULES.iter().map(|r| (r.id(), r.summary())).collect()
}

/// Crates whose function bodies the unit-dataflow pass covers (the same
/// physics set the lint's unit-safety rule guards).
pub const PHYSICS_CRATES: [&str; 8] = [
    "sim", "core", "predict", "fuelcell", "storage", "device", "dvs", "workload",
];

fn is_physics_file(rel_path: &str) -> bool {
    PHYSICS_CRATES
        .iter()
        .any(|krate| rel_path.starts_with(&format!("crates/{krate}/src/")))
}

/// Extracts the range/feasibility parameters the grid checks need from
/// parsed manifest sections. Returns `None` if any required key is
/// missing — the grid checks then skip their range-dependent parts.
#[must_use]
pub fn paper_params(sections: &[toml::Section]) -> Option<PaperParams> {
    fn num(sections: &[toml::Section], section: &str, key: &str) -> Option<f64> {
        sections
            .iter()
            .find(|s| s.name == section)?
            .pairs
            .iter()
            .find_map(|(k, v)| match v {
                toml::Value::Num(x) if k == key => Some(*x),
                _ => None,
            })
    }

    let i_f_min = num(sections, "load_following", "i_f_min_a")?;
    let i_f_max = num(sections, "load_following", "i_f_max_a")?;
    let alpha = num(sections, "efficiency", "alpha")?;
    let bus_v = num(sections, "efficiency", "v_bus_v")?;

    // Worst single sleep transition over every device preset section:
    // charge = P_tr / V_bus · (t_down + t_up), reported in mA·min.
    let mut worst_amp_seconds = 0.0f64;
    for section in sections {
        let get = |key: &str| {
            section.pairs.iter().find_map(|(k, v)| match v {
                toml::Value::Num(x) if k == key => Some(*x),
                _ => None,
            })
        };
        if let (Some(tr_w), Some(down_s), Some(up_s)) =
            (get("transition_w"), get("power_down_s"), get("wake_up_s"))
        {
            worst_amp_seconds = worst_amp_seconds.max(tr_w / bus_v * (down_s + up_s));
        }
    }
    Some(PaperParams {
        i_f_min,
        i_f_max,
        alpha,
        min_capacity_mamin: worst_amp_seconds * 1000.0 / 60.0,
    })
}

/// Collects the workspace-relative paths of committed grid JSON files
/// under `root/examples`, sorted.
fn grid_files(root: &Path) -> io::Result<Vec<String>> {
    let dir = root.join("examples");
    let mut rel = Vec::new();
    if dir.is_dir() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                if let Some(name) = path.file_name() {
                    rel.push(format!("examples/{}", name.to_string_lossy()));
                }
            }
        }
    }
    rel.sort();
    Ok(rel)
}

/// Analyzes the workspace under `root` and matches the result against
/// `baseline` (conventionally `analyze-baseline.json`, kept separate
/// from the lint's ledger).
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn run(root: &Path, baseline: &Baseline) -> io::Result<Report> {
    let files = fcdpm_lint::workspace_files(root)?;
    let mut findings = Vec::new();
    let mut inline_suppressed = 0usize;
    let mut graph = SymbolGraph::default();
    let mut lock_graph = locks::LockGraph::default();

    for (rel, path) in &files {
        let source = fs::read_to_string(path)?;
        let scan = Scan::new(&source);
        graph.add_file(rel, &scan);
        let mut file_findings = Vec::new();
        if is_physics_file(rel) {
            file_findings.extend(dataflow::check_file(rel, &scan));
        }
        file_findings.extend(taint::check_file(rel, &scan));
        file_findings.extend(digest::check_file(rel, &source, &scan));
        for finding in file_findings {
            if scan.is_suppressed(finding.rule, finding.line) {
                inline_suppressed += 1;
            } else {
                findings.push(finding);
            }
        }
        // The lock pass filters suppressions itself (its cycle findings
        // only materialize after every file has fed the graph).
        findings.extend(lock_graph.add_file(rel, &scan));
    }
    findings.extend(symbols::check_layering(&graph));
    findings.extend(lock_graph.cycle_findings());

    let mut scanned: std::collections::BTreeSet<String> =
        files.iter().map(|(rel, _)| rel.clone()).collect();
    let mut files_scanned = files.len();

    // Paper-constants conformance — skipped entirely when the manifest
    // is absent (scratch workspaces in tests have none).
    let manifest_path = root.join(MANIFEST_PATH);
    let mut params = None;
    if let Ok(text) = fs::read_to_string(&manifest_path) {
        scanned.insert(MANIFEST_PATH.to_owned());
        files_scanned += 1;
        findings.extend(constants::check(root, &text));
        if let Ok(sections) = toml::parse(&text) {
            params = paper_params(&sections);
        }
    }

    // Grid feasibility over committed examples/*.json documents.
    for rel in grid_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        scanned.insert(rel.clone());
        files_scanned += 1;
        match json::parse(&text) {
            Ok(doc) if grid::looks_like_grid(&doc) => {
                findings.extend(grid::check(&rel, &doc, params.as_ref()));
            }
            Ok(_) => {}
            Err(err) => findings.push(fcdpm_lint::Finding {
                rule: AnalyzeRule::GridFeasibility.id(),
                path: rel,
                line: 1,
                message: format!("does not parse as JSON: {err}"),
            }),
        }
    }

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    let outcome = baseline.apply(findings, Some(&scanned));
    Ok(Report {
        findings: outcome.findings,
        inline_suppressed,
        baselined: outcome.baselined,
        stale: outcome.stale,
        files_scanned,
    })
}

/// Analyzes the tree and builds a baseline that exactly covers the
/// current findings (the `--write-baseline` workflow).
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn snapshot_baseline(root: &Path, note: &str) -> io::Result<Baseline> {
    let report = run(root, &Baseline::default())?;
    Ok(Baseline::from_findings(&report.findings, note))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_stable_and_disjoint_from_lint() {
        let ids: Vec<&str> = ALL_RULES.iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            [
                "unit-dataflow",
                "layering",
                "paper-constants",
                "grid-feasibility",
                "determinism-taint",
                "lock-discipline",
                "digest-stability"
            ]
        );
        for rule in fcdpm_lint::Rule::ALL {
            assert!(!ids.contains(&rule.id()), "catalogues must not overlap");
        }
    }

    #[test]
    fn paper_params_come_from_the_committed_manifest_shape() {
        let text = "\
[efficiency]\npath = \"a.rs\"\nalpha = 0.45\nbeta = 0.13\nv_bus_v = 12.0\n\
[load_following]\npath = \"b.rs\"\ni_f_min_a = 0.1\ni_f_max_a = 1.2\n\
[camcorder]\npath = \"c.rs\"\ntransition_w = 4.8\npower_down_s = 0.5\nwake_up_s = 0.5\n\
[experiment2]\npath = \"c.rs\"\ntransition_w = 14.4\npower_down_s = 1.0\nwake_up_s = 1.0\n";
        let params = paper_params(&toml::parse(text).unwrap()).unwrap();
        assert!((params.i_f_min - 0.1).abs() < 1e-12);
        assert!((params.i_f_max - 1.2).abs() < 1e-12);
        assert!((params.alpha - 0.45).abs() < 1e-12);
        // Experiment 2: 14.4 W / 12 V × 2 s = 2.4 A·s = 40 mA·min.
        assert!(
            (params.min_capacity_mamin - 40.0).abs() < 1e-9,
            "{params:?}"
        );
    }

    #[test]
    fn missing_manifest_keys_mean_no_params() {
        assert!(paper_params(&toml::parse("[efficiency]\nalpha = 0.45\n").unwrap()).is_none());
    }
}
