//! Second-stage semantic analysis for the `fcdpm` workspace.
//!
//! Where `fcdpm-lint` does token-level pattern matching file by file,
//! this crate builds workspace-wide context and checks properties the
//! lint cannot see:
//!
//! * [`AnalyzeRule::Layering`] — a cross-crate symbol/module graph from
//!   `use` edges, checked against the intended dependency DAG (physics
//!   below policy below orchestration).
//! * [`AnalyzeRule::UnitDataflow`] — a conservative dataflow lattice
//!   that follows `fcdpm-units` newtypes through `let`-bindings and
//!   arithmetic inside function bodies, flagging dimensional mixes the
//!   signature-level lint cannot reach.
//! * [`AnalyzeRule::PaperConstants`] — every DAC'07 constant recorded in
//!   `paper-constants.toml` must appear verbatim as a literal in the
//!   source file its manifest section names.
//! * [`AnalyzeRule::GridFeasibility`] — committed runner job grids
//!   (`examples/*.json`) are validated against the load-following range
//!   and storage feasibility before any simulation runs.
//!
//! The third layer guards the byte-identical-artifact contract and the
//! lock discipline behind it:
//!
//! * [`AnalyzeRule::DeterminismTaint`] — nondeterminism sources
//!   (wall-clock, thread identity, hash-order iteration, env reads,
//!   unseeded RNG, channel arrival order) must not reach artifact sinks
//!   (manifest/shard/bench writers, FNV digest folds) without an
//!   explicit sort/canonicalize launder ([`taint`]).
//! * [`AnalyzeRule::LockDiscipline`] — a static lock-acquisition-order
//!   graph over every `Mutex` site: cycles (potential deadlock), guards
//!   held across job-closure calls, and poison handling inconsistent
//!   with the `lock_deque` idiom ([`locks`]).
//! * [`AnalyzeRule::DigestStability`] — digest-keyed structs
//!   (`GridSpec`, `JobSpec`) must account for every serde field in an
//!   explicit folded/masked manifest pair, so a new field can never
//!   silently alias or orphan resume caches ([`digest`]).
//! * [`AnalyzeRule::AtomicArtifact`] — every write into a grid run
//!   directory must go through the tmp+rename publishers or the
//!   checksummed-append checkpoint writer ([`artifacts`]), so a crash
//!   can never leave a half-written artifact a resume would parse.
//!
//! The fourth layer makes the engine interprocedural and incremental:
//!
//! * a workspace [call graph](callgraph) with per-function
//!   [summaries](summaries) computed to a fixpoint lets the
//!   determinism-taint and lock-discipline passes follow flows through
//!   helper calls across function and file boundaries;
//! * [`AnalyzeRule::HintSoundness`] / [`AnalyzeRule::HintCoalescing`] —
//!   every `FcOutputPolicy` impl's `steady_current` hint is
//!   cross-checked against its decide path ([`hints`]): unsound
//!   `Some(..)` hints are errors, missed/plannable coalescing
//!   opportunities are warnings feeding the ROADMAP worklist;
//! * a digest-keyed [pass cache](cache) (`analyze-cache.json`) replays
//!   unchanged pass results, keyed by content digest for intra-file
//!   passes and by (content digest, dependency-summary digests) for
//!   interprocedural ones, with the cold scan parallelized on the
//!   `fcdpm-runner` pool.
//!
//! The report/baseline/SARIF machinery is shared with `fcdpm-lint`
//! (identical ledger semantics, disjoint rule catalogue, separate
//! `analyze-baseline.json`), and the same determinism contract holds:
//! findings are sorted by `(path, line, rule, message)` so two runs over
//! the same tree are byte-identical in every output format — including
//! a full-cache-hit run versus the cold run that seeded it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod cache;
pub mod callgraph;
pub mod constants;
pub mod dataflow;
pub mod digest;
pub mod grid;
pub mod hints;
pub mod locks;
pub mod summaries;
pub mod symbols;
mod syntax;
pub mod taint;
pub mod toml;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fcdpm_lint::{json, Baseline, Finding, Report, Scan};

pub use constants::MANIFEST_PATH;
pub use grid::PaperParams;
pub use symbols::SymbolGraph;

/// The analysis rule catalogue (disjoint from the lint's [`fcdpm_lint::Rule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzeRule {
    /// Dimensional soundness of arithmetic inside function bodies.
    UnitDataflow,
    /// Cross-crate `use` edges respect the intended dependency layering.
    Layering,
    /// Hard-coded paper constants match `paper-constants.toml`.
    PaperConstants,
    /// Committed job grids are statically feasible.
    GridFeasibility,
    /// Nondeterminism sources must not reach artifact sinks un-laundered.
    DeterminismTaint,
    /// Lock acquisition order, guard scope and poison handling.
    LockDiscipline,
    /// Digest-keyed structs account for every field (folded or masked).
    DigestStability,
    /// `steady_current` hints must be sound against the decide path.
    HintSoundness,
    /// Coalescing opportunities the hint leaves on the table.
    HintCoalescing,
    /// Run-directory writes must use the atomic/checksummed helpers.
    AtomicArtifact,
}

/// Every rule, in catalogue order.
pub const ALL_RULES: [AnalyzeRule; 10] = [
    AnalyzeRule::UnitDataflow,
    AnalyzeRule::Layering,
    AnalyzeRule::PaperConstants,
    AnalyzeRule::GridFeasibility,
    AnalyzeRule::DeterminismTaint,
    AnalyzeRule::LockDiscipline,
    AnalyzeRule::DigestStability,
    AnalyzeRule::HintSoundness,
    AnalyzeRule::HintCoalescing,
    AnalyzeRule::AtomicArtifact,
];

/// Finding severity: what `--fail-on` thresholds and SARIF levels key
/// on. Ordered so `Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: tracked (and baselined) work, not a broken contract.
    Warning,
    /// A violated contract.
    Error,
}

impl AnalyzeRule {
    /// Stable identifier used in reports, baselines and suppressions.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            AnalyzeRule::UnitDataflow => "unit-dataflow",
            AnalyzeRule::Layering => "layering",
            AnalyzeRule::PaperConstants => "paper-constants",
            AnalyzeRule::GridFeasibility => "grid-feasibility",
            AnalyzeRule::DeterminismTaint => "determinism-taint",
            AnalyzeRule::LockDiscipline => "lock-discipline",
            AnalyzeRule::DigestStability => "digest-stability",
            AnalyzeRule::HintSoundness => "hint-soundness",
            AnalyzeRule::HintCoalescing => "hint-coalescing",
            AnalyzeRule::AtomicArtifact => "atomic-artifact",
        }
    }

    /// The rule's severity (`hint-coalescing` is the catalogue's one
    /// advisory rule; everything else is a violated contract).
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            AnalyzeRule::HintCoalescing => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line description (also the SARIF rule short description).
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            AnalyzeRule::UnitDataflow => {
                "arithmetic must not mix raw f64 projections or newtypes of distinct dimensions"
            }
            AnalyzeRule::Layering => {
                "cross-crate use edges must follow the workspace dependency DAG"
            }
            AnalyzeRule::PaperConstants => {
                "hard-coded paper constants must match paper-constants.toml"
            }
            AnalyzeRule::GridFeasibility => {
                "committed job grids must be statically feasible for the paper hardware"
            }
            AnalyzeRule::DeterminismTaint => {
                "nondeterminism sources must not reach artifact sinks without a sort/canonicalize"
            }
            AnalyzeRule::LockDiscipline => {
                "lock acquisition order must be acyclic, guards must not cover job closures, \
                 and poison handling must match the lock_deque idiom"
            }
            AnalyzeRule::DigestStability => {
                "every field of a digest-keyed struct must be explicitly folded or masked"
            }
            AnalyzeRule::HintSoundness => {
                "a Some(..) steady_current hint requires a segment-invariant decide path"
            }
            AnalyzeRule::HintCoalescing => {
                "a None steady_current hint over an invariant or plannable decide path \
                 leaves chunk coalescing on the table"
            }
            AnalyzeRule::AtomicArtifact => {
                "run-directory writes must go through the tmp+rename or \
                 checksummed-append helpers"
            }
        }
    }
}

/// The `(id, summary)` pairs for SARIF output.
#[must_use]
pub fn rule_catalogue() -> Vec<(&'static str, &'static str)> {
    ALL_RULES.iter().map(|r| (r.id(), r.summary())).collect()
}

/// The severity of a rule id (unknown ids are treated as errors — the
/// conservative direction for exit-status gating).
#[must_use]
pub fn severity_of(rule_id: &str) -> Severity {
    ALL_RULES
        .iter()
        .find(|r| r.id() == rule_id)
        .map_or(Severity::Error, |r| r.severity())
}

/// Crates whose function bodies the unit-dataflow pass covers (the same
/// physics set the lint's unit-safety rule guards).
pub const PHYSICS_CRATES: [&str; 8] = [
    "sim", "core", "predict", "fuelcell", "storage", "device", "dvs", "workload",
];

fn is_physics_file(rel_path: &str) -> bool {
    PHYSICS_CRATES
        .iter()
        .any(|krate| rel_path.starts_with(&format!("crates/{krate}/src/")))
}

/// Extracts the range/feasibility parameters the grid checks need from
/// parsed manifest sections. Returns `None` if any required key is
/// missing — the grid checks then skip their range-dependent parts.
#[must_use]
pub fn paper_params(sections: &[toml::Section]) -> Option<PaperParams> {
    fn num(sections: &[toml::Section], section: &str, key: &str) -> Option<f64> {
        sections
            .iter()
            .find(|s| s.name == section)?
            .pairs
            .iter()
            .find_map(|(k, v)| match v {
                toml::Value::Num(x) if k == key => Some(*x),
                _ => None,
            })
    }

    let i_f_min = num(sections, "load_following", "i_f_min_a")?;
    let i_f_max = num(sections, "load_following", "i_f_max_a")?;
    let alpha = num(sections, "efficiency", "alpha")?;
    let bus_v = num(sections, "efficiency", "v_bus_v")?;

    // Worst single sleep transition over every device preset section:
    // charge = P_tr / V_bus · (t_down + t_up), reported in mA·min.
    let mut worst_amp_seconds = 0.0f64;
    for section in sections {
        let get = |key: &str| {
            section.pairs.iter().find_map(|(k, v)| match v {
                toml::Value::Num(x) if k == key => Some(*x),
                _ => None,
            })
        };
        if let (Some(tr_w), Some(down_s), Some(up_s)) =
            (get("transition_w"), get("power_down_s"), get("wake_up_s"))
        {
            worst_amp_seconds = worst_amp_seconds.max(tr_w / bus_v * (down_s + up_s));
        }
    }
    Some(PaperParams {
        i_f_min,
        i_f_max,
        alpha,
        min_capacity_mamin: worst_amp_seconds * 1000.0 / 60.0,
    })
}

/// Collects the workspace-relative paths of committed grid JSON files
/// under `root/examples`, sorted.
fn grid_files(root: &Path) -> io::Result<Vec<String>> {
    let dir = root.join("examples");
    let mut rel = Vec::new();
    if dir.is_dir() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                if let Some(name) = path.file_name() {
                    rel.push(format!("examples/{}", name.to_string_lossy()));
                }
            }
        }
    }
    rel.sort();
    Ok(rel)
}

/// Options for [`run_with`].
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Cache file to read and atomically rewrite (conventionally
    /// [`cache::CACHE_FILE`] under the analysis root). `None` disables
    /// both reading and writing — the [`run`] default, and the CLI's
    /// `--no-cache`.
    pub cache_path: Option<PathBuf>,
    /// Worker threads for the parallel per-file scan stage (`None` =
    /// available parallelism, capped at 8).
    pub workers: Option<usize>,
}

/// The result of an engine run: the report plus cache accounting.
#[derive(Debug)]
pub struct Analysis {
    /// The findings report (identical to what [`run`] returns).
    pub report: Report,
    /// Cache hit/miss accounting for this run.
    pub stats: cache::CacheStats,
    /// Inputs whose content digest differs from the loaded cache
    /// (every input, on a cold or cache-less run) — what the CLI's
    /// `--changed` focuses the report on.
    pub changed: BTreeSet<String>,
    /// Wall-clock phase timings, in execution order.
    pub timings: Vec<(&'static str, Duration)>,
}

/// Per-file output of the parallel scan stage.
struct FileData {
    rel: String,
    digest: u64,
    scan: Scan,
    symbols: symbols::FileSymbols,
    defs: Vec<callgraph::FnDef>,
    /// Intra-file pass results (pre-suppression).
    dataflow: Vec<Finding>,
    digest_pass: Vec<Finding>,
    artifacts_pass: Vec<Finding>,
    /// Content digest matched the loaded cache (intra results replayed).
    intra_hit: bool,
    /// The loaded cache entry, for the interprocedural deps compare.
    cached: Option<cache::CachedFile>,
}

/// Replays one cached pass bucket as findings for `rel`.
fn replay(entry: &cache::CachedFile, bucket: &str, rel: &str) -> Vec<Finding> {
    entry
        .passes
        .get(bucket)
        .map(|cached| cached.iter().map(|f| f.to_finding(rel)).collect())
        .unwrap_or_default()
}

/// Reads, digests and scans one file, replaying or running the
/// intra-file passes (the parallel stage's job body).
fn scan_one(rel: &str, path: &Path, cached: Option<cache::CachedFile>) -> io::Result<FileData> {
    let source = fs::read_to_string(path)?;
    let digest = cache::content_digest(source.as_bytes());
    let scan = Scan::new(&source);
    let symbols = symbols::file_symbols(rel, &scan);
    let defs = callgraph::function_defs(rel, &scan);
    let (intra_hit, dataflow, digest_pass, artifacts_pass) = match &cached {
        Some(entry) if entry.digest == digest => (
            true,
            replay(entry, "dataflow", rel),
            replay(entry, "digest", rel),
            replay(entry, "artifacts", rel),
        ),
        _ => {
            let df = if is_physics_file(rel) {
                dataflow::check_file(rel, &scan)
            } else {
                Vec::new()
            };
            (
                false,
                df,
                digest::check_file(rel, &source, &scan),
                artifacts::check_file(rel, &scan),
            )
        }
    };
    Ok(FileData {
        rel: rel.to_owned(),
        digest,
        scan,
        symbols,
        defs,
        dataflow,
        digest_pass,
        artifacts_pass,
        intra_hit,
        cached,
    })
}

/// Captures computed findings into a cache bucket.
fn bucket(findings: &[Finding]) -> Vec<cache::CachedFinding> {
    findings
        .iter()
        .map(cache::CachedFinding::from_finding)
        .collect()
}

/// Analyzes the workspace under `root` and matches the result against
/// `baseline` (conventionally `analyze-baseline.json`, kept separate
/// from the lint's ledger). Equivalent to [`run_with`] with default
/// options — no pass cache is read or written.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn run(root: &Path, baseline: &Baseline) -> io::Result<Report> {
    run_with(root, baseline, &EngineOptions::default()).map(|analysis| analysis.report)
}

/// The incremental engine behind [`run`] and `fcdpm analyze`.
///
/// Phase A reads, digests and scans every workspace file in parallel
/// on the `fcdpm-runner` pool, replaying cached intra-file pass
/// results for unchanged files. Phase B builds the symbol and call
/// graphs, computes function summaries to a fixpoint, then replays or
/// runs the interprocedural passes per file (valid only while the
/// file's content *and* its resolved callees' summaries are
/// unchanged); the global graph passes are recomputed every run.
/// Cached findings are stored pre-suppression and re-filtered against
/// the live scans, and the rewritten cache is saved atomically.
///
/// # Errors
///
/// Propagates I/O errors from traversal, file reads, or the cache
/// write (a corrupt cache *read* degrades to a cold run instead).
pub fn run_with(root: &Path, baseline: &Baseline, options: &EngineOptions) -> io::Result<Analysis> {
    let t_total = Instant::now();
    let mut timings = Vec::new();
    let files = fcdpm_lint::workspace_files(root)?;
    let old_cache = options
        .cache_path
        .as_ref()
        .map_or_else(cache::Cache::default, |path| cache::Cache::load(path));
    let cold = old_cache.is_empty();

    // Phase A — parallel: read + digest + scan + extract + intra passes.
    let t_scan = Instant::now();
    let jobs: Vec<_> = files
        .iter()
        .map(|(rel, path)| {
            let rel = rel.clone();
            let path = path.clone();
            let cached = old_cache.files.get(&rel).cloned();
            move || scan_one(&rel, &path, cached)
        })
        .collect();
    let workers = options
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get().min(8)));
    let mut data = Vec::with_capacity(files.len());
    for result in fcdpm_runner::pool::run_to_completion(jobs, workers, None) {
        match result.execution {
            fcdpm_runner::pool::Execution::Completed(file_data) => data.push(file_data?),
            fcdpm_runner::pool::Execution::Panicked(msg) => {
                return Err(io::Error::other(format!("analysis worker panicked: {msg}")));
            }
            fcdpm_runner::pool::Execution::TimedOut => {
                return Err(io::Error::other("analysis worker timed out"));
            }
        }
    }
    timings.push(("scan+intra", t_scan.elapsed()));

    // Phase B — serial: graphs, summaries, interprocedural + global passes.
    let t_graph = Instant::now();
    let mut graph = SymbolGraph::default();
    for file_data in &data {
        graph.files.push(file_data.symbols.clone());
    }
    let all_defs: Vec<callgraph::FnDef> =
        data.iter().flat_map(|d| d.defs.iter().cloned()).collect();
    let ctx = summaries::SummaryContext::build(callgraph::CallGraph::from_defs(all_defs));
    timings.push(("summaries", t_graph.elapsed()));

    let t_passes = Instant::now();
    let mut lock_graph = locks::LockGraph::default();
    let mut findings = Vec::new();
    let mut inline_suppressed = 0usize;
    let mut new_cache = cache::Cache::default();
    let mut changed: BTreeSet<String> = BTreeSet::new();
    let mut stats = cache::CacheStats {
        files_total: data.len(),
        cold,
        ..cache::CacheStats::default()
    };

    for file_data in &data {
        if !file_data.intra_hit {
            changed.insert(file_data.rel.clone());
        }
        let deps = ctx.file_deps(&file_data.rel);
        let (inter_hit, taint_findings, hint_findings) = match &file_data.cached {
            Some(entry) if file_data.intra_hit && entry.deps == deps => (
                true,
                replay(entry, "taint", &file_data.rel),
                replay(entry, "hints", &file_data.rel),
            ),
            _ => (
                false,
                taint::check_file(&file_data.rel, &file_data.scan, Some(&ctx)),
                hints::check_file(&file_data.rel, &file_data.scan, Some(&ctx)),
            ),
        };
        // Three intra buckets + two interprocedural buckets per file.
        let hits = if inter_hit {
            5
        } else if file_data.intra_hit {
            3
        } else {
            0
        };
        stats.pass_hits += hits;
        stats.pass_misses += 5 - hits;
        if hits == 5 {
            stats.files_reused += 1;
        }

        for finding in file_data
            .dataflow
            .iter()
            .chain(file_data.digest_pass.iter())
            .chain(file_data.artifacts_pass.iter())
            .chain(taint_findings.iter())
            .chain(hint_findings.iter())
        {
            if file_data.scan.is_suppressed(finding.rule, finding.line) {
                inline_suppressed += 1;
            } else {
                findings.push(finding.clone());
            }
        }
        // The lock pass filters suppressions itself (its cycle findings
        // only materialize after every file has fed the graph).
        findings.extend(lock_graph.add_file(&file_data.rel, &file_data.scan, Some(&ctx)));

        new_cache.files.insert(
            file_data.rel.clone(),
            cache::CachedFile {
                digest: file_data.digest,
                deps,
                passes: BTreeMap::from([
                    ("dataflow".to_owned(), bucket(&file_data.dataflow)),
                    ("digest".to_owned(), bucket(&file_data.digest_pass)),
                    ("artifacts".to_owned(), bucket(&file_data.artifacts_pass)),
                    ("taint".to_owned(), bucket(&taint_findings)),
                    ("hints".to_owned(), bucket(&hint_findings)),
                ]),
            },
        );
    }
    findings.extend(symbols::check_layering(&graph));
    findings.extend(lock_graph.cycle_findings());

    let mut scanned: BTreeSet<String> = files.iter().map(|(rel, _)| rel.clone()).collect();
    let mut files_scanned = files.len();
    let mut track_input = |rel: &str, text: &str, changed: &mut BTreeSet<String>| {
        let digest = cache::content_digest(text.as_bytes());
        if old_cache.inputs.get(rel) != Some(&digest) {
            changed.insert(rel.to_owned());
        }
        new_cache.inputs.insert(rel.to_owned(), digest);
    };

    // Paper-constants conformance — skipped entirely when the manifest
    // is absent (scratch workspaces in tests have none).
    let manifest_path = root.join(MANIFEST_PATH);
    let mut params = None;
    if let Ok(text) = fs::read_to_string(&manifest_path) {
        scanned.insert(MANIFEST_PATH.to_owned());
        files_scanned += 1;
        track_input(MANIFEST_PATH, &text, &mut changed);
        findings.extend(constants::check(root, &text));
        if let Ok(sections) = toml::parse(&text) {
            params = paper_params(&sections);
        }
    }

    // Grid feasibility over committed examples/*.json documents.
    for rel in grid_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        scanned.insert(rel.clone());
        files_scanned += 1;
        track_input(&rel, &text, &mut changed);
        match json::parse(&text) {
            Ok(doc) if grid::looks_like_grid(&doc) => {
                findings.extend(grid::check(&rel, &doc, params.as_ref()));
            }
            Ok(_) => {}
            Err(err) => findings.push(Finding {
                rule: AnalyzeRule::GridFeasibility.id(),
                path: rel,
                line: 1,
                message: format!("does not parse as JSON: {err}"),
            }),
        }
    }
    timings.push(("passes", t_passes.elapsed()));

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    let outcome = baseline.apply(findings, Some(&scanned));

    if let Some(path) = &options.cache_path {
        new_cache.save(path)?;
    }
    timings.push(("total", t_total.elapsed()));
    Ok(Analysis {
        report: Report {
            findings: outcome.findings,
            inline_suppressed,
            baselined: outcome.baselined,
            stale: outcome.stale,
            files_scanned,
        },
        stats,
        changed,
        timings,
    })
}

/// Analyzes the tree and builds a baseline that exactly covers the
/// current findings (the `--write-baseline` workflow).
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn snapshot_baseline(root: &Path, note: &str) -> io::Result<Baseline> {
    let report = run(root, &Baseline::default())?;
    Ok(Baseline::from_findings(&report.findings, note))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_stable_and_disjoint_from_lint() {
        let ids: Vec<&str> = ALL_RULES.iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            [
                "unit-dataflow",
                "layering",
                "paper-constants",
                "grid-feasibility",
                "determinism-taint",
                "lock-discipline",
                "digest-stability",
                "hint-soundness",
                "hint-coalescing",
                "atomic-artifact"
            ]
        );
        for rule in fcdpm_lint::Rule::ALL {
            assert!(!ids.contains(&rule.id()), "catalogues must not overlap");
        }
    }

    #[test]
    fn paper_params_come_from_the_committed_manifest_shape() {
        let text = "\
[efficiency]\npath = \"a.rs\"\nalpha = 0.45\nbeta = 0.13\nv_bus_v = 12.0\n\
[load_following]\npath = \"b.rs\"\ni_f_min_a = 0.1\ni_f_max_a = 1.2\n\
[camcorder]\npath = \"c.rs\"\ntransition_w = 4.8\npower_down_s = 0.5\nwake_up_s = 0.5\n\
[experiment2]\npath = \"c.rs\"\ntransition_w = 14.4\npower_down_s = 1.0\nwake_up_s = 1.0\n";
        let params = paper_params(&toml::parse(text).unwrap()).unwrap();
        assert!((params.i_f_min - 0.1).abs() < 1e-12);
        assert!((params.i_f_max - 1.2).abs() < 1e-12);
        assert!((params.alpha - 0.45).abs() < 1e-12);
        // Experiment 2: 14.4 W / 12 V × 2 s = 2.4 A·s = 40 mA·min.
        assert!(
            (params.min_capacity_mamin - 40.0).abs() < 1e-9,
            "{params:?}"
        );
    }

    #[test]
    fn missing_manifest_keys_mean_no_params() {
        assert!(paper_params(&toml::parse("[efficiency]\nalpha = 0.45\n").unwrap()).is_none());
    }
}
