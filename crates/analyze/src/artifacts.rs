//! Atomic-artifact discipline: writes into grid run directories must go
//! through the crash-safe helpers.
//!
//! The crash-safety contract (resume after `kill -9` replays a valid
//! prefix and recomputes the rest) holds only if every byte that lands
//! in a run directory is either (a) published atomically — written to a
//! `*.tmp` sibling and renamed into place by `write_atomic`/
//! `write_shard` — or (b) appended through the checksummed
//! `PartialShardWriter`, whose per-line digests let the reader truncate
//! a torn tail. A raw `fs::write`/`File::create` anywhere else in the
//! run-dir-owning files can leave a half-written artifact that a later
//! resume happily parses.
//!
//! This pass is lexical and file-scoped: in each of [`RUN_DIR_FILES`],
//! any raw file-creation call outside the [`SANCTIONED`] helper
//! functions (and outside test code) is a finding. `manifest.rs` itself
//! is exempt by construction — it *is* the sanctioned writer layer
//! (every one of its publishers goes tmp+rename or checksummed-append),
//! and the determinism-taint pass already covers what flows into it.
//! The pass deliberately does not try to prove a write targets a run
//! directory — in these files every production write does, and a false
//! positive is an invitation to route the new write through the
//! helpers, which is the point.

use fcdpm_lint::{Finding, Scan};

use crate::syntax;
use crate::AnalyzeRule;

/// The files that orchestrate run-directory bytes above the manifest
/// writer layer: the grid engine (spec, aggregate, checkpoints) and the
/// gc repairs.
pub const RUN_DIR_FILES: [&str; 2] = ["crates/grid/src/engine.rs", "crates/grid/src/gc.rs"];

/// Raw file-creation needles (substring-matched on cleaned text; each
/// ends in `(` so an occurrence is always a call site).
const RAW_WRITES: [&str; 3] = ["fs::write(", "File::create(", "OpenOptions::new("];

/// `(file, function)` pairs allowed to touch the filesystem raw: only
/// the gc compaction that truncates a torn partial to its checksum-valid
/// prefix (truncation cannot be expressed as tmp+rename without losing
/// the crash-safety of the append-only file it repairs).
const SANCTIONED: [(&str, &str); 1] = [("crates/grid/src/gc.rs", "gc_run_dir")];

/// Runs the pass over one file. Only [`RUN_DIR_FILES`] can produce
/// findings; other paths return empty immediately.
#[must_use]
pub fn check_file(rel_path: &str, scan: &Scan) -> Vec<Finding> {
    if !RUN_DIR_FILES.contains(&rel_path) {
        return Vec::new();
    }
    let cleaned = &scan.cleaned;
    let mut findings = Vec::new();

    for (fn_off, body) in syntax::function_bodies(cleaned) {
        if scan.is_test_line(scan.line_of(fn_off)) {
            continue;
        }
        let name = syntax::ident_after(cleaned, fn_off + "fn".len());
        if SANCTIONED.contains(&(rel_path, name)) {
            continue;
        }
        let text = &cleaned[body.clone()];
        for needle in RAW_WRITES {
            let mut from = 0usize;
            while let Some(rel) = text[from..].find(needle) {
                let at = from + rel;
                from = at + needle.len();
                let line = scan.line_of(body.start + at);
                if scan.is_test_line(line) {
                    continue;
                }
                let call = needle.trim_end_matches('(');
                findings.push(Finding {
                    rule: AnalyzeRule::AtomicArtifact.id(),
                    path: rel_path.to_owned(),
                    line,
                    message: format!(
                        "`{call}` in `{name}` writes into a run directory without the \
                         tmp+rename or checksummed-append helpers; use `write_atomic`, \
                         `write_shard` or `PartialShardWriter`"
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_run_dir_files_are_skipped() {
        let src = "fn f(p: &Path) { std::fs::write(p, b\"x\").ok(); }";
        assert!(check_file("crates/sim/src/lib.rs", &Scan::new(src)).is_empty());
    }

    #[test]
    fn raw_write_outside_the_helpers_is_flagged() {
        let src = "fn publish(dir: &Path, text: &str) {\n    std::fs::write(dir.join(\"aggregate.json\"), text).ok();\n}\n";
        let findings = check_file("crates/grid/src/engine.rs", &Scan::new(src));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("write_atomic"));
    }

    #[test]
    fn the_sanctioned_gc_compaction_may_write_raw() {
        let src = "fn gc_run_dir(dir: &Path) {\n    let f = std::fs::OpenOptions::new().write(true).open(dir);\n}\n";
        assert!(check_file("crates/grid/src/gc.rs", &Scan::new(src)).is_empty());
    }

    #[test]
    fn the_manifest_writer_layer_is_exempt_by_construction() {
        let src = "fn write_atomic(path: &Path, contents: &str) {\n    std::fs::write(path, contents).ok();\n}\n";
        assert!(check_file("crates/grid/src/manifest.rs", &Scan::new(src)).is_empty());
    }

    #[test]
    fn the_sanctioned_name_is_not_sanctioned_elsewhere() {
        let src = "fn gc_run_dir(path: &Path) { std::fs::write(path, b\"x\").ok(); }";
        let findings = check_file("crates/grid/src/engine.rs", &Scan::new(src));
        assert_eq!(findings.len(), 1, "engine.rs has no sanctioned writers");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn seed(p: &Path) { std::fs::write(p, b\"x\").ok(); }\n}\n";
        assert!(check_file("crates/grid/src/gc.rs", &Scan::new(src)).is_empty());
    }

    #[test]
    fn open_options_counts_as_a_raw_write() {
        let src = "fn truncate(p: &Path) {\n    let f = std::fs::OpenOptions::new().write(true).open(p);\n}\n";
        let findings = check_file("crates/grid/src/gc.rs", &Scan::new(src));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("OpenOptions"));
    }
}
