//! The `fcdpm` command-line tool.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fcdpm_cli::parse(&args) {
        Ok(cmd) => match fcdpm_cli::execute(&cmd) {
            Ok(out) => {
                print!("{}", out.text);
                if out.ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", fcdpm_cli::usage());
            ExitCode::FAILURE
        }
    }
}
