//! Argument parsing.

use core::fmt;

/// Which of the paper's experiments to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Experiment 1: the DVD camcorder.
    Exp1,
    /// Experiment 2: the synthetic uniform workload.
    Exp2,
}

/// Which FC output policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Conv-DPM only.
    Conv,
    /// ASAP-DPM only.
    Asap,
    /// FC-DPM only.
    FcDpm,
    /// All three, with the normalized table.
    All,
}

/// Which trace generator to invoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The camcorder MPEG trace.
    Camcorder,
    /// The Experiment-2 synthetic trace.
    Synthetic,
}

/// Which device preset a simulated trace runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceChoice {
    /// The DVD camcorder of Experiment 1.
    Camcorder,
    /// The synthetic device of Experiment 2.
    Exp2,
}

/// Output format of `fcdpm lint` and `fcdpm analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintFormat {
    /// One `path:line: [rule] message` diagnostic per line.
    Human,
    /// The machine-readable JSON report.
    Json,
    /// SARIF 2.1.0, for code-scanning upload and editor ingestion.
    Sarif,
}

/// The severity threshold that makes `fcdpm analyze` exit nonzero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailOn {
    /// Fail only on error-tier findings.
    Error,
    /// Fail on any finding (the default — matches the old behavior).
    #[default]
    Warning,
    /// Always exit zero (report-only mode for dashboards).
    Never,
}

/// What a `fcdpm grid` invocation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridAction {
    /// Execute the grid fresh (ignoring any previous spill).
    Run,
    /// Execute the grid, reusing digest-matching records from spill.
    Resume,
    /// Inspect a run directory without executing anything.
    Status,
    /// Sweep a grid root: compact torn checkpoints, drop orphaned
    /// temporaries and stale shards, delete abandoned run directories.
    Gc,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run an experiment.
    Experiment {
        /// Which experiment.
        id: ExperimentId,
        /// Storage capacity in mA·min (default 100, the paper's buffer).
        capacity_mamin: f64,
        /// Trace seed (default: the paper-reference seed).
        seed: Option<u64>,
        /// Which policies to run.
        policy: PolicyChoice,
    },
    /// Generate a trace.
    Trace {
        /// Which generator.
        kind: TraceKind,
        /// Seed (default: reference seed).
        seed: Option<u64>,
        /// Horizon in minutes (default 28).
        minutes: f64,
    },
    /// Print a model curve.
    Curve {
        /// `true` for the stack I-V-P curve, `false` for the efficiency
        /// curves.
        stack: bool,
    },
    /// Run the three policies on a user-provided CSV trace.
    Simulate {
        /// Path to the CSV trace (header `idle_s,active_s,active_w`).
        path: String,
        /// Device preset the trace runs on.
        device: DeviceChoice,
        /// Storage capacity in mA·min (default 100).
        capacity_mamin: f64,
    },
    /// Run Experiment 1 cyclically until a hydrogen tank runs dry.
    Lifetime {
        /// Tank size in moles of hydrogen (default 2.0).
        moles: f64,
        /// Storage capacity in mA·min (default 100).
        capacity_mamin: f64,
    },
    /// Find the smallest storage capacity for unconstrained FC-DPM.
    Sizing {
        /// Bisection tolerance in A·s (default 0.05).
        tolerance_as: f64,
    },
    /// Run a batch job grid from a JSON spec file.
    Batch {
        /// Path to the JSON `JobGrid` spec.
        spec: String,
        /// Worker threads (default: available parallelism).
        jobs: Option<usize>,
        /// Output directory for the run manifest (default `results`).
        out: Option<String>,
    },
    /// Drive the fleet-scale grid engine: sharded streaming execution
    /// of an intensional `GridSpec` with digest-keyed resume.
    Grid {
        /// What to do.
        action: GridAction,
        /// Spec file path (`run`/`resume`) or run directory (`status`).
        path: String,
        /// Worker threads (default: available parallelism).
        jobs: Option<usize>,
        /// Jobs per shard — the resident-memory ceiling (default 1024).
        shard_size: Option<u64>,
        /// Parent directory for run directories (default `results/grid`).
        out: Option<String>,
        /// Run directory name (default `grid-<spec-digest>`).
        run_id: Option<String>,
        /// Attempts per job before it is quarantined (default 1).
        max_attempts: Option<u32>,
        /// Base backoff between attempts, in ms (default 0).
        retry_backoff_ms: Option<u64>,
        /// Jobs per fsync'd checkpoint batch; 0 disables mid-shard
        /// checkpointing (default 32).
        checkpoint_batch: Option<u64>,
        /// For `gc`: report what would be repaired without touching
        /// anything.
        dry_run: bool,
    },
    /// Run the seeded fault-injection sweep (canonical schedules under
    /// plain, resilient and Conv-DPM policies) and write the
    /// deterministic manifest.
    Faults {
        /// Only the starvation and combined schedules — for CI smoke
        /// runs.
        quick: bool,
        /// Sweep seed (default: the paper-reference seed).
        seed: Option<u64>,
        /// Worker threads (default: available parallelism).
        jobs: Option<usize>,
        /// Output directory for the manifest (default `results`).
        out: Option<String>,
    },
    /// Run the wall-clock bench harness (fixture grid plus the
    /// chunk-coalescing A/B) and write the deterministic payload.
    Bench {
        /// Fewer timing repetitions — for CI smoke runs.
        quick: bool,
        /// Output path for the JSON payload (default `BENCH_4.json`).
        out: Option<String>,
    },
    /// Run the in-repo static-analysis pass over the workspace sources.
    Lint {
        /// Diagnostics format (default human).
        format: LintFormat,
        /// Baseline file path (default `<root>/lint-baseline.json`;
        /// missing file means an empty baseline).
        baseline: Option<String>,
        /// Workspace root to scan (default: current directory).
        root: Option<String>,
        /// Regenerate the baseline file from the current findings
        /// instead of failing on them.
        write_baseline: bool,
    },
    /// Run the workspace-aware semantic analysis (symbol graph,
    /// unit-dimension dataflow, paper-constants conformance, job-grid
    /// feasibility, interprocedural taint/locks, coalescing hints).
    Analyze {
        /// Diagnostics format (default human).
        format: LintFormat,
        /// Baseline file path (default `<root>/analyze-baseline.json`;
        /// missing file means an empty baseline).
        baseline: Option<String>,
        /// Workspace root to scan (default: current directory).
        root: Option<String>,
        /// Regenerate the baseline file from the current findings
        /// instead of failing on them.
        write_baseline: bool,
        /// Restrict the displayed findings to files whose content (or
        /// interprocedural dependencies) changed since the cached run.
        changed: bool,
        /// Skip reading and writing `analyze-cache.json`.
        no_cache: bool,
        /// Print per-phase wall-clock timings to stderr.
        timings: bool,
        /// Severity threshold for a nonzero exit (default `warning`).
        fail_on: FailOn,
    },
    /// Print usage.
    Help,
}

/// A CLI parse failure, with the message to show the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseCliError {}

fn err(message: impl Into<String>) -> ParseCliError {
    ParseCliError {
        message: message.into(),
    }
}

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    iter: &mut I,
) -> Result<&'a str, ParseCliError> {
    iter.next()
        .ok_or_else(|| err(format!("flag `{flag}` needs a value")))
}

/// Parses an argument list (without the program name).
///
/// # Errors
///
/// Returns a [`ParseCliError`] describing the first malformed argument.
pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Command, ParseCliError> {
    let mut iter = args.iter().map(AsRef::as_ref);
    let Some(cmd) = iter.next() else {
        return Ok(Command::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "experiment" => {
            let id = match iter.next() {
                Some("exp1") | Some("1") => ExperimentId::Exp1,
                Some("exp2") | Some("2") => ExperimentId::Exp2,
                Some(other) => return Err(err(format!("unknown experiment `{other}`"))),
                None => return Err(err("experiment needs `exp1` or `exp2`")),
            };
            let mut capacity_mamin = 100.0;
            let mut seed = None;
            let mut policy = PolicyChoice::All;
            while let Some(flag) = iter.next() {
                match flag {
                    "--capacity-mamin" => {
                        let v = take_value(flag, &mut iter)?;
                        capacity_mamin = v
                            .parse::<f64>()
                            .ok()
                            .filter(|c| *c > 0.0 && c.is_finite())
                            .ok_or_else(|| err(format!("bad capacity `{v}`")))?;
                    }
                    "--seed" => {
                        let v = take_value(flag, &mut iter)?;
                        seed = Some(
                            v.parse::<u64>()
                                .map_err(|_| err(format!("bad seed `{v}`")))?,
                        );
                    }
                    "--policy" => {
                        let v = take_value(flag, &mut iter)?;
                        policy = match v {
                            "conv" => PolicyChoice::Conv,
                            "asap" => PolicyChoice::Asap,
                            "fcdpm" => PolicyChoice::FcDpm,
                            "all" => PolicyChoice::All,
                            other => return Err(err(format!("unknown policy `{other}`"))),
                        };
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Experiment {
                id,
                capacity_mamin,
                seed,
                policy,
            })
        }
        "trace" => {
            let kind = match iter.next() {
                Some("camcorder") => TraceKind::Camcorder,
                Some("synthetic") => TraceKind::Synthetic,
                Some(other) => return Err(err(format!("unknown trace kind `{other}`"))),
                None => return Err(err("trace needs `camcorder` or `synthetic`")),
            };
            let mut seed = None;
            let mut minutes = 28.0;
            while let Some(flag) = iter.next() {
                match flag {
                    "--seed" => {
                        let v = take_value(flag, &mut iter)?;
                        seed = Some(
                            v.parse::<u64>()
                                .map_err(|_| err(format!("bad seed `{v}`")))?,
                        );
                    }
                    "--minutes" => {
                        let v = take_value(flag, &mut iter)?;
                        minutes = v
                            .parse::<f64>()
                            .ok()
                            .filter(|m| *m > 0.0 && m.is_finite())
                            .ok_or_else(|| err(format!("bad minutes `{v}`")))?;
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Trace {
                kind,
                seed,
                minutes,
            })
        }
        "curve" => match iter.next() {
            Some("stack") => Ok(Command::Curve { stack: true }),
            Some("efficiency") => Ok(Command::Curve { stack: false }),
            Some(other) => Err(err(format!("unknown curve `{other}`"))),
            None => Err(err("curve needs `stack` or `efficiency`")),
        },
        "simulate" => {
            let Some(path) = iter.next() else {
                return Err(err("simulate needs a trace file path"));
            };
            let mut device = DeviceChoice::Camcorder;
            let mut capacity_mamin = 100.0;
            while let Some(flag) = iter.next() {
                match flag {
                    "--device" => {
                        let v = take_value(flag, &mut iter)?;
                        device = match v {
                            "camcorder" => DeviceChoice::Camcorder,
                            "exp2" => DeviceChoice::Exp2,
                            other => return Err(err(format!("unknown device `{other}`"))),
                        };
                    }
                    "--capacity-mamin" => {
                        let v = take_value(flag, &mut iter)?;
                        capacity_mamin = v
                            .parse::<f64>()
                            .ok()
                            .filter(|c| *c > 0.0 && c.is_finite())
                            .ok_or_else(|| err(format!("bad capacity `{v}`")))?;
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Simulate {
                path: path.to_owned(),
                device,
                capacity_mamin,
            })
        }
        "lifetime" => {
            let mut moles = 2.0;
            let mut capacity_mamin = 100.0;
            while let Some(flag) = iter.next() {
                match flag {
                    "--moles" => {
                        let v = take_value(flag, &mut iter)?;
                        moles = v
                            .parse::<f64>()
                            .ok()
                            .filter(|m| *m > 0.0 && m.is_finite())
                            .ok_or_else(|| err(format!("bad moles `{v}`")))?;
                    }
                    "--capacity-mamin" => {
                        let v = take_value(flag, &mut iter)?;
                        capacity_mamin = v
                            .parse::<f64>()
                            .ok()
                            .filter(|c| *c > 0.0 && c.is_finite())
                            .ok_or_else(|| err(format!("bad capacity `{v}`")))?;
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Lifetime {
                moles,
                capacity_mamin,
            })
        }
        "sizing" => {
            let mut tolerance_as = 0.05;
            while let Some(flag) = iter.next() {
                match flag {
                    "--tolerance-as" => {
                        let v = take_value(flag, &mut iter)?;
                        tolerance_as = v
                            .parse::<f64>()
                            .ok()
                            .filter(|t| *t > 0.0 && t.is_finite())
                            .ok_or_else(|| err(format!("bad tolerance `{v}`")))?;
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Sizing { tolerance_as })
        }
        "batch" => {
            let Some(spec) = iter.next() else {
                return Err(err("batch needs a JSON spec file path"));
            };
            if spec.starts_with('-') {
                return Err(err("batch needs a JSON spec file path"));
            }
            let mut jobs = None;
            let mut out = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--jobs" => {
                        let v = take_value(flag, &mut iter)?;
                        jobs = Some(
                            v.parse::<usize>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| err(format!("bad worker count `{v}`")))?,
                        );
                    }
                    "--out" => {
                        let v = take_value(flag, &mut iter)?;
                        out = Some(v.to_owned());
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Batch {
                spec: spec.to_owned(),
                jobs,
                out,
            })
        }
        "grid" => {
            let action = match iter.next() {
                Some("run") => GridAction::Run,
                Some("resume") => GridAction::Resume,
                Some("status") => GridAction::Status,
                Some("gc") => GridAction::Gc,
                Some(other) => return Err(err(format!("unknown grid action `{other}`"))),
                None => return Err(err("grid needs `run`, `resume`, `status` or `gc`")),
            };
            let Some(path) = iter.next().filter(|p| !p.starts_with('-')) else {
                return Err(err(match action {
                    GridAction::Status => "grid status needs a run directory",
                    GridAction::Gc => "grid gc needs a grid root directory",
                    _ => "grid needs a JSON GridSpec file path",
                }));
            };
            let mut jobs = None;
            let mut shard_size = None;
            let mut out = None;
            let mut run_id = None;
            let mut max_attempts = None;
            let mut retry_backoff_ms = None;
            let mut checkpoint_batch = None;
            let mut dry_run = false;
            while let Some(flag) = iter.next() {
                match flag {
                    "--jobs" => {
                        let v = take_value(flag, &mut iter)?;
                        jobs = Some(
                            v.parse::<usize>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| err(format!("bad worker count `{v}`")))?,
                        );
                    }
                    "--shard-size" => {
                        let v = take_value(flag, &mut iter)?;
                        shard_size = Some(
                            v.parse::<u64>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| err(format!("bad shard size `{v}`")))?,
                        );
                    }
                    "--out" => {
                        out = Some(take_value(flag, &mut iter)?.to_owned());
                    }
                    "--run-id" => {
                        run_id = Some(take_value(flag, &mut iter)?.to_owned());
                    }
                    "--max-attempts" => {
                        let v = take_value(flag, &mut iter)?;
                        max_attempts = Some(
                            v.parse::<u32>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| err(format!("bad attempt count `{v}`")))?,
                        );
                    }
                    "--retry-backoff-ms" => {
                        let v = take_value(flag, &mut iter)?;
                        retry_backoff_ms = Some(
                            v.parse::<u64>()
                                .map_err(|_| err(format!("bad backoff `{v}`")))?,
                        );
                    }
                    "--checkpoint-batch" => {
                        let v = take_value(flag, &mut iter)?;
                        checkpoint_batch = Some(
                            v.parse::<u64>()
                                .map_err(|_| err(format!("bad checkpoint batch `{v}`")))?,
                        );
                    }
                    "--dry-run" => {
                        dry_run = true;
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Grid {
                action,
                path: path.to_owned(),
                jobs,
                shard_size,
                out,
                run_id,
                max_attempts,
                retry_backoff_ms,
                checkpoint_batch,
                dry_run,
            })
        }
        "faults" => {
            let mut quick = false;
            let mut seed = None;
            let mut jobs = None;
            let mut out = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--quick" => quick = true,
                    "--seed" => {
                        let v = take_value(flag, &mut iter)?;
                        seed = Some(
                            v.parse::<u64>()
                                .map_err(|_| err(format!("bad seed `{v}`")))?,
                        );
                    }
                    "--jobs" => {
                        let v = take_value(flag, &mut iter)?;
                        jobs = Some(
                            v.parse::<usize>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| err(format!("bad worker count `{v}`")))?,
                        );
                    }
                    "--out" => {
                        out = Some(take_value(flag, &mut iter)?.to_owned());
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Faults {
                quick,
                seed,
                jobs,
                out,
            })
        }
        "bench" => {
            let mut quick = false;
            let mut out = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--quick" => quick = true,
                    "--out" => {
                        out = Some(take_value(flag, &mut iter)?.to_owned());
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Bench { quick, out })
        }
        "lint" | "analyze" => {
            let mut format = LintFormat::Human;
            let mut baseline = None;
            let mut root = None;
            let mut write_baseline = false;
            let mut changed = false;
            let mut no_cache = false;
            let mut timings = false;
            let mut fail_on = FailOn::default();
            while let Some(flag) = iter.next() {
                match flag {
                    "--format" => {
                        let v = take_value(flag, &mut iter)?;
                        format = match v {
                            "human" => LintFormat::Human,
                            "json" => LintFormat::Json,
                            "sarif" => LintFormat::Sarif,
                            other => return Err(err(format!("unknown format `{other}`"))),
                        };
                    }
                    "--baseline" => {
                        baseline = Some(take_value(flag, &mut iter)?.to_owned());
                    }
                    "--root" => {
                        root = Some(take_value(flag, &mut iter)?.to_owned());
                    }
                    "--write-baseline" => write_baseline = true,
                    "--changed" | "--no-cache" | "--timings" | "--fail-on" if cmd == "lint" => {
                        return Err(err(format!("flag `{flag}` only applies to `analyze`")));
                    }
                    "--changed" => changed = true,
                    "--no-cache" => no_cache = true,
                    "--timings" => timings = true,
                    "--fail-on" => {
                        let v = take_value(flag, &mut iter)?;
                        fail_on = match v {
                            "error" => FailOn::Error,
                            "warning" => FailOn::Warning,
                            "never" => FailOn::Never,
                            other => {
                                return Err(err(format!(
                                    "unknown fail-on threshold `{other}` (error|warning|never)"
                                )))
                            }
                        };
                    }
                    other => return Err(err(format!("unknown flag `{other}`"))),
                }
            }
            if cmd == "analyze" {
                Ok(Command::Analyze {
                    format,
                    baseline,
                    root,
                    write_baseline,
                    changed,
                    no_cache,
                    timings,
                    fail_on,
                })
            } else {
                Ok(Command::Lint {
                    format,
                    baseline,
                    root,
                    write_baseline,
                })
            }
        }
        other => Err(err(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_help() {
        assert_eq!(parse::<&str>(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn experiment_defaults() {
        let cmd = parse(&["experiment", "exp1"]).unwrap();
        assert_eq!(
            cmd,
            Command::Experiment {
                id: ExperimentId::Exp1,
                capacity_mamin: 100.0,
                seed: None,
                policy: PolicyChoice::All,
            }
        );
    }

    #[test]
    fn experiment_flags() {
        let cmd = parse(&[
            "experiment",
            "2",
            "--capacity-mamin",
            "50",
            "--seed",
            "7",
            "--policy",
            "fcdpm",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Experiment {
                id: ExperimentId::Exp2,
                capacity_mamin: 50.0,
                seed: Some(7),
                policy: PolicyChoice::FcDpm,
            }
        );
    }

    #[test]
    fn trace_parsing() {
        let cmd = parse(&["trace", "synthetic", "--minutes", "5", "--seed", "3"]).unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                kind: TraceKind::Synthetic,
                seed: Some(3),
                minutes: 5.0,
            }
        );
    }

    #[test]
    fn curve_parsing() {
        assert_eq!(
            parse(&["curve", "stack"]).unwrap(),
            Command::Curve { stack: true }
        );
        assert_eq!(
            parse(&["curve", "efficiency"]).unwrap(),
            Command::Curve { stack: false }
        );
    }

    #[test]
    fn simulate_parse() {
        assert_eq!(
            parse(&["simulate", "t.csv"]).unwrap(),
            Command::Simulate {
                path: "t.csv".into(),
                device: DeviceChoice::Camcorder,
                capacity_mamin: 100.0,
            }
        );
        assert_eq!(
            parse(&[
                "simulate",
                "t.csv",
                "--device",
                "exp2",
                "--capacity-mamin",
                "60"
            ])
            .unwrap(),
            Command::Simulate {
                path: "t.csv".into(),
                device: DeviceChoice::Exp2,
                capacity_mamin: 60.0,
            }
        );
        assert!(parse(&["simulate"]).is_err());
        assert!(parse(&["simulate", "t.csv", "--device", "toaster"]).is_err());
    }

    #[test]
    fn lifetime_and_sizing_parse() {
        assert_eq!(
            parse(&["lifetime"]).unwrap(),
            Command::Lifetime {
                moles: 2.0,
                capacity_mamin: 100.0
            }
        );
        assert_eq!(
            parse(&["lifetime", "--moles", "0.5", "--capacity-mamin", "50"]).unwrap(),
            Command::Lifetime {
                moles: 0.5,
                capacity_mamin: 50.0
            }
        );
        assert_eq!(
            parse(&["sizing"]).unwrap(),
            Command::Sizing { tolerance_as: 0.05 }
        );
        assert_eq!(
            parse(&["sizing", "--tolerance-as", "0.2"]).unwrap(),
            Command::Sizing { tolerance_as: 0.2 }
        );
        assert!(parse(&["lifetime", "--moles", "-1"]).is_err());
        assert!(parse(&["sizing", "--tolerance-as", "0"]).is_err());
    }

    #[test]
    fn batch_parse() {
        assert_eq!(
            parse(&["batch", "grid.json"]).unwrap(),
            Command::Batch {
                spec: "grid.json".into(),
                jobs: None,
                out: None,
            }
        );
        assert_eq!(
            parse(&["batch", "grid.json", "--jobs", "4", "--out", "runs"]).unwrap(),
            Command::Batch {
                spec: "grid.json".into(),
                jobs: Some(4),
                out: Some("runs".into()),
            }
        );
        assert!(parse(&["batch"]).is_err());
        assert!(parse(&["batch", "--jobs", "4"]).is_err());
        assert!(parse(&["batch", "g.json", "--jobs", "0"]).is_err());
        assert!(parse(&["batch", "g.json", "--jobs", "x"]).is_err());
        assert!(parse(&["batch", "g.json", "--frob"]).is_err());
    }

    /// A `Command::Grid` with every optional knob unset.
    fn bare_grid(action: GridAction, path: &str) -> Command {
        Command::Grid {
            action,
            path: path.into(),
            jobs: None,
            shard_size: None,
            out: None,
            run_id: None,
            max_attempts: None,
            retry_backoff_ms: None,
            checkpoint_batch: None,
            dry_run: false,
        }
    }

    #[test]
    fn grid_parse() {
        assert_eq!(
            parse(&["grid", "run", "fleet.json"]).unwrap(),
            bare_grid(GridAction::Run, "fleet.json")
        );
        assert_eq!(
            parse(&[
                "grid",
                "resume",
                "fleet.json",
                "--jobs",
                "4",
                "--shard-size",
                "512",
                "--out",
                "runs",
                "--run-id",
                "campaign-a",
                "--max-attempts",
                "3",
                "--retry-backoff-ms",
                "250",
                "--checkpoint-batch",
                "64"
            ])
            .unwrap(),
            Command::Grid {
                action: GridAction::Resume,
                path: "fleet.json".into(),
                jobs: Some(4),
                shard_size: Some(512),
                out: Some("runs".into()),
                run_id: Some("campaign-a".into()),
                max_attempts: Some(3),
                retry_backoff_ms: Some(250),
                checkpoint_batch: Some(64),
                dry_run: false,
            }
        );
        assert_eq!(
            parse(&["grid", "status", "results/grid/grid-abc"]).unwrap(),
            bare_grid(GridAction::Status, "results/grid/grid-abc")
        );
        assert!(parse(&["grid"]).is_err());
        assert!(parse(&["grid", "frob"]).is_err());
        assert!(parse(&["grid", "run"]).is_err());
        assert!(parse(&["grid", "run", "--jobs", "4"]).is_err());
        assert!(parse(&["grid", "run", "g.json", "--jobs", "0"]).is_err());
        assert!(parse(&["grid", "run", "g.json", "--shard-size", "0"]).is_err());
        assert!(parse(&["grid", "status"])
            .unwrap_err()
            .message
            .contains("run directory"));
        assert!(parse(&["grid", "run", "g.json", "--frob"]).is_err());
        assert!(parse(&["grid", "run", "g.json", "--max-attempts", "0"]).is_err());
        assert!(parse(&["grid", "run", "g.json", "--retry-backoff-ms", "x"]).is_err());
        assert!(parse(&["grid", "run", "g.json", "--checkpoint-batch", "x"]).is_err());
    }

    #[test]
    fn grid_gc_parse() {
        assert_eq!(
            parse(&["grid", "gc", "results/grid"]).unwrap(),
            bare_grid(GridAction::Gc, "results/grid")
        );
        let Command::Grid {
            action, dry_run, ..
        } = parse(&["grid", "gc", "results/grid", "--dry-run"]).unwrap()
        else {
            panic!("not a grid command");
        };
        assert_eq!(action, GridAction::Gc);
        assert!(dry_run);
        assert!(parse(&["grid", "gc"])
            .unwrap_err()
            .message
            .contains("grid root"));
    }

    #[test]
    fn faults_parse() {
        assert_eq!(
            parse(&["faults"]).unwrap(),
            Command::Faults {
                quick: false,
                seed: None,
                jobs: None,
                out: None,
            }
        );
        assert_eq!(
            parse(&["faults", "--quick", "--seed", "7", "--jobs", "2", "--out", "runs"]).unwrap(),
            Command::Faults {
                quick: true,
                seed: Some(7),
                jobs: Some(2),
                out: Some("runs".into()),
            }
        );
        assert!(parse(&["faults", "--seed", "x"]).is_err());
        assert!(parse(&["faults", "--jobs", "0"]).is_err());
        assert!(parse(&["faults", "--out"]).is_err());
        assert!(parse(&["faults", "--frob"]).is_err());
    }

    #[test]
    fn bench_parse() {
        assert_eq!(
            parse(&["bench"]).unwrap(),
            Command::Bench {
                quick: false,
                out: None,
            }
        );
        assert_eq!(
            parse(&["bench", "--quick", "--out", "target/b.json"]).unwrap(),
            Command::Bench {
                quick: true,
                out: Some("target/b.json".into()),
            }
        );
        assert!(parse(&["bench", "--out"]).is_err());
        assert!(parse(&["bench", "--frob"]).is_err());
    }

    #[test]
    fn lint_parse() {
        assert_eq!(
            parse(&["lint"]).unwrap(),
            Command::Lint {
                format: LintFormat::Human,
                baseline: None,
                root: None,
                write_baseline: false,
            }
        );
        assert_eq!(
            parse(&[
                "lint",
                "--format",
                "json",
                "--baseline",
                "b.json",
                "--root",
                "/tmp/ws",
                "--write-baseline"
            ])
            .unwrap(),
            Command::Lint {
                format: LintFormat::Json,
                baseline: Some("b.json".into()),
                root: Some("/tmp/ws".into()),
                write_baseline: true,
            }
        );
        assert!(parse(&["lint", "--format", "xml"]).is_err());
        assert!(parse(&["lint", "--baseline"]).is_err());
        assert!(parse(&["lint", "--frob"]).is_err());
    }

    #[test]
    fn analyze_parse() {
        assert_eq!(
            parse(&["analyze"]).unwrap(),
            Command::Analyze {
                format: LintFormat::Human,
                baseline: None,
                root: None,
                write_baseline: false,
                changed: false,
                no_cache: false,
                timings: false,
                fail_on: FailOn::Warning,
            }
        );
        assert_eq!(
            parse(&[
                "analyze",
                "--format",
                "sarif",
                "--baseline",
                "a.json",
                "--root",
                "/tmp/ws",
                "--write-baseline"
            ])
            .unwrap(),
            Command::Analyze {
                format: LintFormat::Sarif,
                baseline: Some("a.json".into()),
                root: Some("/tmp/ws".into()),
                write_baseline: true,
                changed: false,
                no_cache: false,
                timings: false,
                fail_on: FailOn::Warning,
            }
        );
        assert_eq!(
            parse(&["lint", "--format", "sarif"]).unwrap(),
            Command::Lint {
                format: LintFormat::Sarif,
                baseline: None,
                root: None,
                write_baseline: false,
            }
        );
        assert!(parse(&["analyze", "--format", "xml"]).is_err());
        assert!(parse(&["analyze", "--frob"]).is_err());
    }

    #[test]
    fn analyze_cache_flags_parse() {
        assert_eq!(
            parse(&[
                "analyze",
                "--changed",
                "--no-cache",
                "--timings",
                "--fail-on",
                "error"
            ])
            .unwrap(),
            Command::Analyze {
                format: LintFormat::Human,
                baseline: None,
                root: None,
                write_baseline: false,
                changed: true,
                no_cache: true,
                timings: true,
                fail_on: FailOn::Error,
            }
        );
        assert!(matches!(
            parse(&["analyze", "--fail-on", "never"]).unwrap(),
            Command::Analyze {
                fail_on: FailOn::Never,
                ..
            }
        ));
        assert!(parse(&["analyze", "--fail-on", "panic"])
            .unwrap_err()
            .message
            .contains("fail-on"));
        assert!(parse(&["analyze", "--fail-on"]).is_err());
        // The cache flags are analyze-only; lint rejects them by name.
        for flag in ["--changed", "--no-cache", "--timings"] {
            assert!(parse(&["lint", flag])
                .unwrap_err()
                .message
                .contains("only applies to `analyze`"));
        }
    }

    #[test]
    fn error_messages_name_the_problem() {
        assert!(parse(&["experiment"]).unwrap_err().message.contains("exp1"));
        assert!(parse(&["experiment", "exp3"])
            .unwrap_err()
            .message
            .contains("exp3"));
        assert!(parse(&["experiment", "exp1", "--seed"])
            .unwrap_err()
            .message
            .contains("needs a value"));
        assert!(parse(&["experiment", "exp1", "--seed", "x"])
            .unwrap_err()
            .message
            .contains("bad seed"));
        assert!(parse(&["experiment", "exp1", "--capacity-mamin", "-5"])
            .unwrap_err()
            .message
            .contains("bad capacity"));
        assert!(parse(&["experiment", "exp1", "--policy", "x"])
            .unwrap_err()
            .message
            .contains("unknown policy"));
        assert!(parse(&["frobnicate"])
            .unwrap_err()
            .message
            .contains("frobnicate"));
        assert!(parse(&["trace"]).unwrap_err().message.contains("camcorder"));
        assert!(parse(&["curve"]).unwrap_err().message.contains("stack"));
        assert!(parse(&["trace", "camcorder", "--minutes", "0"])
            .unwrap_err()
            .message
            .contains("bad minutes"));
    }
}
