//! Command execution (pure: returns the output as a string).

use core::fmt::Write as _;

use fcdpm_core::dpm::PredictiveSleep;
use fcdpm_core::policy::{AsapDpm, ConvDpm, FcDpm};
use fcdpm_core::sizing::minimum_storage_capacity;
use fcdpm_core::{FcOutputPolicy, FuelOptimizer};
use fcdpm_fuelcell::{FcSystem, GibbsCoefficient, HydrogenTank, PolarizationCurve};
use fcdpm_sim::{HybridSimulator, SimMetrics};
use fcdpm_storage::IdealStorage;
use fcdpm_units::{Amps, Charge, CurrentRange, Seconds};
use fcdpm_workload::{CamcorderTrace, Scenario, SyntheticTrace};

use crate::{
    Command, DeviceChoice, ExperimentId, FailOn, GridAction, LintFormat, PolicyChoice, TraceKind,
};

/// The outcome of executing a command: the stdout payload plus whether
/// the process should exit successfully. `fcdpm lint` is the one command
/// that can run fine yet demand a nonzero exit (outstanding findings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// The text to print on stdout.
    pub text: String,
    /// Whether the process should exit zero.
    pub ok: bool,
}

impl CmdOutput {
    /// An output with a successful exit status.
    #[must_use]
    pub fn success(text: String) -> Self {
        Self { text, ok: true }
    }
}

/// Executes a parsed command and returns its stdout payload plus exit
/// status.
///
/// # Errors
///
/// Returns a human-readable message if a simulation fails (which the
/// built-in scenarios never do) or a file cannot be read or written.
pub fn execute(command: &Command) -> Result<CmdOutput, String> {
    match command {
        Command::Help => Ok(CmdOutput::success(crate::usage())),
        Command::Experiment {
            id,
            capacity_mamin,
            seed,
            policy,
        } => run_experiment(*id, *capacity_mamin, *seed, *policy).map(CmdOutput::success),
        Command::Trace {
            kind,
            seed,
            minutes,
        } => Ok(CmdOutput::success(generate_trace(*kind, *seed, *minutes))),
        Command::Curve { stack } => Ok(CmdOutput::success(print_curve(*stack))),
        Command::Simulate {
            path,
            device,
            capacity_mamin,
        } => run_simulate(path, *device, *capacity_mamin).map(CmdOutput::success),
        Command::Lifetime {
            moles,
            capacity_mamin,
        } => run_lifetime(*moles, *capacity_mamin).map(CmdOutput::success),
        Command::Sizing { tolerance_as } => run_sizing(*tolerance_as).map(CmdOutput::success),
        Command::Batch { spec, jobs, out } => {
            run_batch(spec, *jobs, out.as_deref()).map(CmdOutput::success)
        }
        Command::Grid {
            action,
            path,
            jobs,
            shard_size,
            out,
            run_id,
            max_attempts,
            retry_backoff_ms,
            checkpoint_batch,
            dry_run,
        } => run_grid_cmd(GridCmd {
            action: *action,
            path,
            jobs: *jobs,
            shard_size: *shard_size,
            out_dir: out.as_deref(),
            run_id: run_id.as_deref(),
            max_attempts: *max_attempts,
            retry_backoff_ms: *retry_backoff_ms,
            checkpoint_batch: *checkpoint_batch,
            dry_run: *dry_run,
        })
        .map(CmdOutput::success),
        Command::Faults {
            quick,
            seed,
            jobs,
            out,
        } => run_faults(*quick, *seed, *jobs, out.as_deref()).map(CmdOutput::success),
        Command::Bench { quick, out } => run_bench(*quick, out.as_deref()).map(CmdOutput::success),
        Command::Lint {
            format,
            baseline,
            root,
            write_baseline,
        } => run_analysis_stage(
            &LINT_STAGE,
            *format,
            baseline.as_deref(),
            root.as_deref(),
            *write_baseline,
        ),
        Command::Analyze {
            format,
            baseline,
            root,
            write_baseline,
            changed,
            no_cache,
            timings,
            fail_on,
        } => run_analyze_command(&AnalyzeInvocation {
            format: *format,
            baseline: baseline.as_deref(),
            root: root.as_deref(),
            write_baseline: *write_baseline,
            changed: *changed,
            no_cache: *no_cache,
            timings: *timings,
            fail_on: *fail_on,
        }),
    }
}

/// One static-analysis stage (`lint` or `analyze`): both share the
/// report, baseline and SARIF machinery and differ only in the rule
/// engine behind them and the ledger file they default to.
struct AnalysisStage {
    /// Verb used in error messages (`lint`, `analyze`).
    verb: &'static str,
    /// SARIF `tool.driver.name`.
    tool_name: &'static str,
    /// Default baseline filename under the workspace root.
    default_baseline: &'static str,
    /// Runs the stage against a baseline.
    run: fn(&std::path::Path, &fcdpm_lint::Baseline) -> std::io::Result<fcdpm_lint::Report>,
    /// Builds a baseline covering the current findings.
    snapshot: fn(&std::path::Path, &str) -> std::io::Result<fcdpm_lint::Baseline>,
    /// `(id, summary)` pairs for the SARIF rule catalogue.
    catalogue: fn() -> Vec<(&'static str, &'static str)>,
}

const LINT_STAGE: AnalysisStage = AnalysisStage {
    verb: "lint",
    tool_name: "fcdpm-lint",
    default_baseline: "lint-baseline.json",
    run: |root, baseline| fcdpm_lint::run(root, baseline),
    snapshot: |root, note| fcdpm_lint::snapshot_baseline(root, note),
    catalogue: || {
        fcdpm_lint::Rule::ALL
            .into_iter()
            .map(|r| (r.id(), r.summary()))
            .collect()
    },
};

const ANALYZE_STAGE: AnalysisStage = AnalysisStage {
    verb: "analyze",
    tool_name: "fcdpm-analyze",
    default_baseline: "analyze-baseline.json",
    run: |root, baseline| fcdpm_analyze::run(root, baseline),
    snapshot: |root, note| fcdpm_analyze::snapshot_baseline(root, note),
    catalogue: fcdpm_analyze::rule_catalogue,
};

fn run_analysis_stage(
    stage: &AnalysisStage,
    format: LintFormat,
    baseline: Option<&str>,
    root: Option<&str>,
    write_baseline: bool,
) -> Result<CmdOutput, String> {
    let root_dir = std::path::PathBuf::from(root.unwrap_or("."));
    let baseline_path = baseline
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root_dir.join(stage.default_baseline));
    if write_baseline {
        let snapshot = (stage.snapshot)(
            &root_dir,
            "pre-existing debt; see DESIGN.md \u{a7} Static analysis",
        )
        .map_err(|e| format!("cannot {} `{}`: {e}", stage.verb, root_dir.display()))?;
        let entries = snapshot.entries.len();
        std::fs::write(&baseline_path, snapshot.to_json())
            .map_err(|e| format!("cannot write `{}`: {e}", baseline_path.display()))?;
        return Ok(CmdOutput::success(format!(
            "wrote {entries} baseline entr{} to {}\n",
            if entries == 1 { "y" } else { "ies" },
            baseline_path.display()
        )));
    }
    let baseline = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read `{}`: {e}", baseline_path.display()))?;
        fcdpm_lint::Baseline::from_json(&text)
            .map_err(|e| format!("malformed baseline `{}`: {e}", baseline_path.display()))?
    } else {
        fcdpm_lint::Baseline::default()
    };
    let report = (stage.run)(&root_dir, &baseline)
        .map_err(|e| format!("cannot {} `{}`: {e}", stage.verb, root_dir.display()))?;
    let text = match format {
        LintFormat::Human => report.to_human(),
        LintFormat::Json => report.to_json(),
        LintFormat::Sarif => {
            fcdpm_lint::sarif::to_sarif(&report, stage.tool_name, &(stage.catalogue)())
        }
    };
    Ok(CmdOutput {
        text,
        ok: report.is_clean(),
    })
}

/// One parsed `fcdpm analyze` invocation (bundled so the execution path
/// takes one argument instead of eight).
struct AnalyzeInvocation<'a> {
    format: LintFormat,
    baseline: Option<&'a str>,
    root: Option<&'a str>,
    write_baseline: bool,
    changed: bool,
    no_cache: bool,
    timings: bool,
    fail_on: FailOn,
}

/// Executes `fcdpm analyze` through the incremental engine: the pass
/// cache at `<root>/analyze-cache.json` (unless `--no-cache`), display
/// focused on changed inputs (`--changed`), phase timings on stderr
/// (`--timings`), and the exit threshold (`--fail-on`). JSON and SARIF
/// bytes carry no cache metadata, so cold and warm runs stay
/// byte-identical.
fn run_analyze_command(inv: &AnalyzeInvocation<'_>) -> Result<CmdOutput, String> {
    if inv.write_baseline {
        // Baseline regeneration goes through the shared (cache-less)
        // stage path — it rewrites the ledger, not the cache.
        return run_analysis_stage(&ANALYZE_STAGE, inv.format, inv.baseline, inv.root, true);
    }
    let root_dir = std::path::PathBuf::from(inv.root.unwrap_or("."));
    let baseline_path = inv
        .baseline
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root_dir.join(ANALYZE_STAGE.default_baseline));
    let baseline = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read `{}`: {e}", baseline_path.display()))?;
        fcdpm_lint::Baseline::from_json(&text)
            .map_err(|e| format!("malformed baseline `{}`: {e}", baseline_path.display()))?
    } else {
        fcdpm_lint::Baseline::default()
    };
    let options = fcdpm_analyze::EngineOptions {
        cache_path: (!inv.no_cache).then(|| root_dir.join(fcdpm_analyze::cache::CACHE_FILE)),
        workers: None,
    };
    let analysis = fcdpm_analyze::run_with(&root_dir, &baseline, &options)
        .map_err(|e| format!("cannot analyze `{}`: {e}", root_dir.display()))?;
    if inv.timings {
        for (phase, wall) in &analysis.timings {
            eprintln!("analyze timing: {phase} {:.1} ms", wall.as_secs_f64() * 1e3);
        }
    }
    let report = &analysis.report;
    // `--changed` focuses the *display* on inputs whose digests moved;
    // the exit status still judges the full finding set.
    let display = if inv.changed {
        fcdpm_lint::Report {
            findings: report
                .findings
                .iter()
                .filter(|f| analysis.changed.contains(&f.path))
                .cloned()
                .collect(),
            inline_suppressed: report.inline_suppressed,
            baselined: report.baselined,
            stale: report.stale.clone(),
            files_scanned: report.files_scanned,
        }
    } else {
        fcdpm_lint::Report {
            findings: report.findings.clone(),
            inline_suppressed: report.inline_suppressed,
            baselined: report.baselined,
            stale: report.stale.clone(),
            files_scanned: report.files_scanned,
        }
    };
    let text = match inv.format {
        LintFormat::Human => {
            let mut text = display.to_human();
            if inv.changed {
                let _ = writeln!(
                    text,
                    "--changed: showing {} of {} finding(s) ({} changed input(s))",
                    display.findings.len(),
                    report.findings.len(),
                    analysis.changed.len()
                );
            }
            // The cache line is human-only so JSON/SARIF artifacts stay
            // byte-identical between cold and warm runs.
            text.push_str(&analysis.stats.human_line());
            text.push('\n');
            text
        }
        LintFormat::Json => display.to_json(),
        LintFormat::Sarif => fcdpm_lint::sarif::to_sarif_leveled(
            &display,
            ANALYZE_STAGE.tool_name,
            &(ANALYZE_STAGE.catalogue)(),
            |rule| match fcdpm_analyze::severity_of(rule) {
                fcdpm_analyze::Severity::Warning => "warning",
                fcdpm_analyze::Severity::Error => "error",
            },
        ),
    };
    let ok = match inv.fail_on {
        FailOn::Never => true,
        FailOn::Warning => report.is_clean(),
        FailOn::Error => !report
            .findings
            .iter()
            .any(|f| fcdpm_analyze::severity_of(f.rule) == fcdpm_analyze::Severity::Error),
    };
    Ok(CmdOutput { text, ok })
}

fn run_batch(
    spec_path: &str,
    jobs: Option<usize>,
    out_dir: Option<&str>,
) -> Result<String, String> {
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read `{spec_path}`: {e}"))?;
    let grid: fcdpm_runner::JobGrid =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse `{spec_path}`: {e}"))?;
    let config = match jobs {
        Some(workers) => fcdpm_runner::RunConfig::with_workers(workers),
        None => fcdpm_runner::RunConfig::default(),
    };
    let manifest = fcdpm_runner::run_grid(&grid, &config);

    let out_dir = std::path::Path::new(out_dir.unwrap_or("results"));
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create `{}`: {e}", out_dir.display()))?;
    let stem = std::path::Path::new(spec_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("batch");
    let manifest_path = out_dir.join(format!("{stem}.manifest.json"));
    std::fs::write(&manifest_path, manifest.to_json())
        .map_err(|e| format!("cannot write `{}`: {e}", manifest_path.display()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>12} {:>12} {:>8}",
        "job", "outcome", "fuel [A*s]", "I_fc [A]", "ms"
    );
    for record in &manifest.records {
        match &record.outcome {
            fcdpm_runner::JobOutcome::Completed(m) => {
                let _ = writeln!(
                    out,
                    "{:<28} {:>10} {:>12.1} {:>12.4} {:>8}",
                    record.id, "ok", m.fuel_as, m.mean_stack_current_a, record.wall_ms
                );
            }
            fcdpm_runner::JobOutcome::Failed(msg) => {
                let reason: String = msg.chars().take(40).collect();
                let _ = writeln!(out, "{:<28} {:>10}  {reason}", record.id, "FAILED");
            }
            fcdpm_runner::JobOutcome::TimedOut => {
                let _ = writeln!(out, "{:<28} {:>10}", record.id, "TIMEOUT");
            }
        }
    }
    let _ = writeln!(out, "{}", manifest.summary());
    let _ = writeln!(out, "manifest: {}", manifest_path.display());
    Ok(out)
}

/// Everything one `fcdpm grid` invocation carries.
struct GridCmd<'a> {
    action: GridAction,
    path: &'a str,
    jobs: Option<usize>,
    shard_size: Option<u64>,
    out_dir: Option<&'a str>,
    run_id: Option<&'a str>,
    max_attempts: Option<u32>,
    retry_backoff_ms: Option<u64>,
    checkpoint_batch: Option<u64>,
    dry_run: bool,
}

fn run_grid_cmd(cmd: GridCmd<'_>) -> Result<String, String> {
    let mut out = String::new();
    let path = cmd.path;
    if cmd.action == GridAction::Gc {
        let report = fcdpm_grid::gc(std::path::Path::new(path), cmd.dry_run)?;
        out.push_str(&report.to_text());
        return Ok(out);
    }
    if cmd.action == GridAction::Status {
        let state = fcdpm_grid::status(std::path::Path::new(path))?;
        let _ = writeln!(
            out,
            "grid {}: {}/{} records across {} shard files",
            state.run_id, state.records, state.expected_jobs, state.shards
        );
        let _ = writeln!(
            out,
            "completed {} | failed {} | timed out {}",
            state.completed, state.failed, state.timed_out
        );
        if state.partial_shards > 0 {
            let _ = writeln!(
                out,
                "partial checkpoints: {} file(s), {} recoverable record(s), {} torn line(s)",
                state.partial_shards, state.checkpointed, state.torn_lines
            );
        }
        let _ = writeln!(
            out,
            "aggregate.json: {}",
            if state.has_aggregate {
                "present"
            } else {
                "missing"
            }
        );
        let _ = writeln!(
            out,
            "state: {}",
            if state.is_complete() {
                "complete"
            } else {
                "incomplete"
            }
        );
        return Ok(out);
    }

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let spec: fcdpm_grid::GridSpec =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))?;
    let config = fcdpm_grid::GridConfig {
        workers: cmd.jobs.unwrap_or(0),
        shard_size: cmd.shard_size.unwrap_or(1024),
        out_dir: std::path::PathBuf::from(cmd.out_dir.unwrap_or("results/grid")),
        run_id: cmd.run_id.map(ToOwned::to_owned),
        resume: cmd.action == GridAction::Resume,
        timeout: None,
        retry: fcdpm_runner::pool::RetryPolicy {
            max_attempts: cmd.max_attempts.unwrap_or(1),
            backoff: std::time::Duration::from_millis(cmd.retry_backoff_ms.unwrap_or(0)),
        },
        checkpoint_batch: cmd.checkpoint_batch.unwrap_or(32),
        // Test-only: lets the CI kill-resume gate abort the process at a
        // deterministic point instead of racing a timed `kill -9`.
        crash_point: match std::env::var("FCDPM_GRID_CRASH_POINT") {
            Ok(text) => Some(text.parse()?),
            Err(_) => None,
        },
    };
    let run = fcdpm_grid::run(&spec, &config)?;
    let agg = &run.aggregate;
    let _ = writeln!(
        out,
        "grid {}: {} jobs over {} shards (shard size {})",
        run.run_id, agg.jobs, agg.shards, agg.shard_size
    );
    let _ = writeln!(
        out,
        "completed {} | failed {} | timed out {}",
        agg.completed, agg.failed, agg.timed_out
    );
    if agg.retried > 0 || agg.quarantined > 0 {
        let _ = writeln!(
            out,
            "retried {} | quarantined {}",
            agg.retried, agg.quarantined
        );
    }
    let _ = writeln!(
        out,
        "cache hits: {}/{} ({:.1}%)",
        run.cache_hits,
        run.cache_hits + run.recomputed,
        run.cache_hit_pct()
    );
    let _ = writeln!(out, "recomputed: {}", run.recomputed);
    if run.recovered_jobs > 0 {
        let _ = writeln!(out, "recovered from checkpoints: {}", run.recovered_jobs);
    }
    let _ = writeln!(
        out,
        "fuel: {:.1} A*s total (p50 {:.1}, p99 {:.1})",
        agg.total_fuel_as, agg.fuel_p50_as, agg.fuel_p99_as
    );
    let _ = writeln!(
        out,
        "deficit: {:.1} s total (p50 {:.1}, p99 {:.1})",
        agg.total_deficit_time_s, agg.deficit_p50_s, agg.deficit_p99_s
    );
    let _ = writeln!(
        out,
        "throughput: {:.0} jobs/s nominal, {:.0} jobs/s wall",
        agg.jobs_per_sec_nominal, run.jobs_per_sec_wall
    );
    let _ = writeln!(out, "peak resident jobs: {}", run.peak_resident_jobs);
    let _ = writeln!(
        out,
        "aggregate: {}",
        run.dir.join("aggregate.json").display()
    );
    Ok(out)
}

fn run_faults(
    quick: bool,
    seed: Option<u64>,
    jobs: Option<usize>,
    out_dir: Option<&str>,
) -> Result<String, String> {
    let seed = seed.unwrap_or(0xDAC0_2007);
    let labeled = fcdpm_runner::fault_sweep_labeled(seed, quick);
    let specs: Vec<fcdpm_runner::JobSpec> = labeled.iter().map(|(_, s)| s.clone()).collect();
    let config = match jobs {
        Some(workers) => fcdpm_runner::RunConfig::with_workers(workers),
        None => fcdpm_runner::RunConfig::default(),
    };
    let manifest = fcdpm_runner::run_specs(&specs, &config);

    let out_dir = std::path::Path::new(out_dir.unwrap_or("results"));
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create `{}`: {e}", out_dir.display()))?;
    let manifest_path = out_dir.join(format!("faults-{seed:x}.manifest.json"));
    std::fs::write(&manifest_path, manifest.deterministic_json())
        .map_err(|e| format!("cannot write `{}`: {e}", manifest_path.display()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault sweep, seed {seed:#x}, {} jobs{}",
        manifest.records.len(),
        if quick { " (quick)" } else { "" }
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>12} {:>11} {:>7} {:>6} {:>12}",
        "schedule/policy", "outcome", "fuel [A*s]", "deficit [s]", "faults", "degr", "fallback [s]"
    );
    for ((label, _), record) in labeled.iter().zip(&manifest.records) {
        match &record.outcome {
            fcdpm_runner::JobOutcome::Completed(m) => {
                let _ = writeln!(
                    out,
                    "{label:<22} {:>8} {:>12.1} {:>11.3} {:>7} {:>6} {:>12.1}",
                    "ok",
                    m.fuel_as,
                    m.deficit_time_s,
                    m.faults_applied,
                    m.degradations,
                    m.time_in_fallback_s
                );
            }
            fcdpm_runner::JobOutcome::Failed(msg) => {
                let reason: String = msg.chars().take(40).collect();
                let _ = writeln!(out, "{label:<22} {:>8}  {reason}", "FAILED");
            }
            fcdpm_runner::JobOutcome::TimedOut => {
                let _ = writeln!(out, "{label:<22} {:>8}", "TIMEOUT");
            }
        }
    }

    // The leading control pair (no schedule vs empty schedule) must be
    // bit-identical — fault plumbing is only allowed to change runs
    // that actually carry events.
    let control_identical = matches!(
        (&manifest.records[0].outcome, &manifest.records[1].outcome),
        (
            fcdpm_runner::JobOutcome::Completed(a),
            fcdpm_runner::JobOutcome::Completed(b),
        ) if a == b
    );
    if !control_identical {
        return Err("control pair differs: an empty fault schedule changed the metrics".to_owned());
    }
    let _ = writeln!(out, "control pair bit-identical: yes");
    let _ = writeln!(out, "manifest: {}", manifest_path.display());
    Ok(out)
}

fn run_bench(quick: bool, out: Option<&str>) -> Result<String, String> {
    let options = fcdpm_bench::harness::BenchOptions { quick };
    let report = fcdpm_bench::harness::run(&options)?;
    let out_path = std::path::Path::new(out.unwrap_or("BENCH_4.json"));
    std::fs::write(out_path, &report.json)
        .map_err(|e| format!("cannot write `{}`: {e}", out_path.display()))?;
    let mut text = report.text;
    let _ = writeln!(text, "payload: {}", out_path.display());

    // Trend tracking: keep sequential payload copies next to the
    // payload (default `results/bench-history/`) and print the metric
    // drift against the most recent previous entry. The payload is
    // timing-free, so drift means the simulation itself changed.
    let history_dir = out_path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(
            || std::path::PathBuf::from("results/bench-history"),
            |p| p.join("bench-history"),
        );
    std::fs::create_dir_all(&history_dir)
        .map_err(|e| format!("cannot create `{}`: {e}", history_dir.display()))?;
    let previous = latest_bench_entry(&history_dir);
    let next_seq = previous.as_ref().map_or(1, |(n, _)| n + 1);
    match &previous {
        None => {
            let _ = writeln!(text, "bench history: first entry");
        }
        Some((_, path)) => {
            let drift = std::fs::read_to_string(path)
                .ok()
                .and_then(|prev| fcdpm_bench::harness::drift_against(&prev, &report.json));
            match drift {
                Some(drift) => {
                    let _ = writeln!(text, "drift vs {}:", path.display());
                    text.push_str(&drift);
                }
                None => {
                    let _ = writeln!(
                        text,
                        "previous payload `{}` unreadable (schema change)",
                        path.display()
                    );
                }
            }
        }
    }
    let entry = history_dir.join(format!("bench-{next_seq:04}.json"));
    std::fs::write(&entry, &report.json)
        .map_err(|e| format!("cannot write `{}`: {e}", entry.display()))?;
    let _ = writeln!(text, "history: {}", entry.display());
    Ok(text)
}

/// Highest-numbered `bench-NNNN.json` in the history directory.
fn latest_bench_entry(dir: &std::path::Path) -> Option<(u64, std::path::PathBuf)> {
    let mut best: Option<(u64, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(seq) = name
            .to_str()
            .and_then(|n| n.strip_prefix("bench-"))
            .and_then(|n| n.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| seq > *b) {
            best = Some((seq, entry.path()));
        }
    }
    best
}

fn run_simulate(path: &str, device: DeviceChoice, capacity_mamin: f64) -> Result<String, String> {
    let csv = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let trace = fcdpm_workload::Trace::from_csv(path, &csv)
        .map_err(|e| format!("cannot parse `{path}`: {e}"))?;
    if trace.is_empty() {
        return Err(format!("trace `{path}` contains no slots"));
    }
    let spec = match device {
        DeviceChoice::Camcorder => fcdpm_device::presets::dvd_camcorder(),
        DeviceChoice::Exp2 => fcdpm_device::presets::experiment2_device(),
    };
    let mut scenario = Scenario::experiment1();
    scenario.name = format!("custom trace `{path}` on {}", spec.name());
    scenario.device = spec;
    scenario.trace = trace;
    scenario.active_current_estimate = None;
    let capacity = Charge::from_milliamp_minutes(capacity_mamin);
    let mut out = String::new();
    let _ = writeln!(out, "{}", scenario.name);
    let conv = run_one(&scenario, capacity, &mut ConvDpm::dac07())?;
    let asap = run_one(&scenario, capacity, &mut AsapDpm::dac07(capacity))?;
    let mut fc_policy = FcDpm::new(
        FuelOptimizer::dac07(),
        &scenario.device,
        capacity,
        scenario.sigma,
        scenario.active_current_estimate,
    );
    let fc = run_one(&scenario, capacity, &mut fc_policy)?;
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>10}",
        "policy", "fuel [A*s]", "vs Conv"
    );
    for (name, m) in [("Conv-DPM", &conv), ("ASAP-DPM", &asap), ("FC-DPM", &fc)] {
        let _ = writeln!(
            out,
            "{:<10} {:>12.1} {:>9.1}%",
            name,
            m.fuel.total().amp_seconds(),
            m.normalized_fuel(&conv) * 100.0
        );
    }
    Ok(out)
}

fn run_lifetime(moles: f64, capacity_mamin: f64) -> Result<String, String> {
    let scenario = Scenario::experiment1();
    let capacity = Charge::from_milliamp_minutes(capacity_mamin);
    let tank = HydrogenTank::from_hydrogen_moles(moles, GibbsCoefficient::dac07());
    let sim = HybridSimulator::dac07(&scenario.device);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lifetime on a {moles} mol H2 tank ({:.0} of stack charge), Experiment 1 looped",
        tank.capacity()
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12}",
        "policy", "lifetime [h]", "cycles"
    );
    let fc_policy = || {
        FcDpm::new(
            FuelOptimizer::dac07(),
            &scenario.device,
            capacity,
            scenario.sigma,
            scenario.active_current_estimate,
        )
    };
    let mut rows: Vec<(&str, Box<dyn FcOutputPolicy>)> = vec![
        ("Conv-DPM", Box::new(ConvDpm::dac07())),
        ("ASAP-DPM", Box::new(AsapDpm::dac07(capacity))),
        ("FC-DPM", Box::new(fc_policy())),
    ];
    for (name, policy) in &mut rows {
        let mut storage = IdealStorage::new(capacity, capacity * 0.5);
        let mut sleep = PredictiveSleep::new(scenario.rho);
        let res = sim
            .run_until_depleted(
                &scenario.trace,
                &mut sleep,
                policy.as_mut(),
                &mut storage,
                &tank,
                100_000,
            )
            .map_err(|e| format!("simulation failed: {e}"))?;
        let _ = writeln!(
            out,
            "{name:<10} {:>12.2} {:>12}",
            res.lifetime.seconds() / 3600.0,
            res.full_cycles
        );
    }
    Ok(out)
}

fn run_sizing(tolerance_as: f64) -> Result<String, String> {
    let scenario = Scenario::experiment1();
    let res = minimum_storage_capacity(
        &FuelOptimizer::dac07(),
        &scenario.trace,
        &scenario.device,
        Charge::new(tolerance_as),
    )
    .map_err(|e| format!("sizing failed: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "smallest storage for unconstrained FC-DPM on Experiment 1: {:.2} ({:.0} mA*min)",
        res.min_capacity,
        res.min_capacity.amp_seconds() * 1000.0 / 60.0
    );
    let _ = writeln!(
        out,
        "fuel at that capacity: {:.1} (the per-slot optimum floor)",
        res.fuel_at_min
    );
    Ok(out)
}

fn scenario_for(id: ExperimentId, seed: Option<u64>) -> Scenario {
    match (id, seed) {
        (ExperimentId::Exp1, None) => Scenario::experiment1(),
        (ExperimentId::Exp1, Some(s)) => Scenario::experiment1_seeded(s),
        (ExperimentId::Exp2, None) => Scenario::experiment2(),
        (ExperimentId::Exp2, Some(s)) => Scenario::experiment2_seeded(s),
    }
}

fn run_one(
    scenario: &Scenario,
    capacity: Charge,
    policy: &mut dyn FcOutputPolicy,
) -> Result<SimMetrics, String> {
    let sim = HybridSimulator::dac07(&scenario.device);
    let mut storage = IdealStorage::new(capacity, capacity * 0.5);
    let mut sleep = PredictiveSleep::new(scenario.rho);
    sim.run(&scenario.trace, &mut sleep, policy, &mut storage)
        .map(|r| r.metrics)
        .map_err(|e| format!("simulation failed: {e}"))
}

fn run_experiment(
    id: ExperimentId,
    capacity_mamin: f64,
    seed: Option<u64>,
    policy: PolicyChoice,
) -> Result<String, String> {
    let scenario = scenario_for(id, seed);
    let capacity = Charge::from_milliamp_minutes(capacity_mamin);
    let mut out = String::new();
    let _ = writeln!(out, "{}", scenario.name);
    let _ = writeln!(
        out,
        "trace: {} slots, {:.1} min; buffer {:.1} mA*min",
        scenario.trace.len(),
        scenario.trace.total_duration().minutes(),
        capacity_mamin
    );
    let fc_policy = || {
        FcDpm::new(
            FuelOptimizer::dac07(),
            &scenario.device,
            capacity,
            scenario.sigma,
            scenario.active_current_estimate,
        )
    };
    let mut rows: Vec<(&str, SimMetrics)> = Vec::new();
    match policy {
        PolicyChoice::Conv => {
            rows.push((
                "Conv-DPM",
                run_one(&scenario, capacity, &mut ConvDpm::dac07())?,
            ));
        }
        PolicyChoice::Asap => {
            rows.push((
                "ASAP-DPM",
                run_one(&scenario, capacity, &mut AsapDpm::dac07(capacity))?,
            ));
        }
        PolicyChoice::FcDpm => {
            rows.push(("FC-DPM", run_one(&scenario, capacity, &mut fc_policy())?));
        }
        PolicyChoice::All => {
            rows.push((
                "Conv-DPM",
                run_one(&scenario, capacity, &mut ConvDpm::dac07())?,
            ));
            rows.push((
                "ASAP-DPM",
                run_one(&scenario, capacity, &mut AsapDpm::dac07(capacity))?,
            ));
            rows.push(("FC-DPM", run_one(&scenario, capacity, &mut fc_policy())?));
        }
    }
    let baseline = rows[0].1.clone();
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>14} {:>10}",
        "policy", "fuel [A*s]", "mean I_fc [A]", "vs first"
    );
    for (name, m) in &rows {
        let _ = writeln!(
            out,
            "{:<10} {:>12.1} {:>14.4} {:>9.1}%",
            name,
            m.fuel.total().amp_seconds(),
            m.mean_stack_current().amps(),
            m.normalized_fuel(&baseline) * 100.0
        );
    }
    Ok(out)
}

fn generate_trace(kind: TraceKind, seed: Option<u64>, minutes: f64) -> String {
    let horizon = Seconds::from_minutes(minutes);
    let trace = match kind {
        TraceKind::Camcorder => {
            let mut b = CamcorderTrace::dac07().horizon(horizon);
            if let Some(s) = seed {
                b = b.seed(s);
            }
            b.build()
        }
        TraceKind::Synthetic => {
            let mut b = SyntheticTrace::dac07().horizon(horizon);
            if let Some(s) = seed {
                b = b.seed(s);
            }
            b.build()
        }
    };
    trace.to_csv()
}

fn print_curve(stack: bool) -> String {
    let mut out = String::new();
    if stack {
        let model = PolarizationCurve::bcs_20w();
        let _ = writeln!(out, "i_fc_ma,v_fc_v,p_fc_w");
        for pt in model.sample_curve(Amps::new(1.5), 31) {
            let _ = writeln!(
                out,
                "{:.0},{:.3},{:.3}",
                pt.current.milliamps(),
                pt.voltage.volts(),
                pt.power.watts()
            );
        }
    } else {
        let variable = FcSystem::dac07_variable_fan();
        let onoff = FcSystem::dac07_on_off_fan();
        let zeta = GibbsCoefficient::dac07();
        let _ = writeln!(out, "i_f_ma,stack_eff,system_eff_variable,system_eff_onoff");
        for i in CurrentRange::dac07().sweep(23) {
            // The dac07 sweep stays inside the dac07 load-following
            // range, so `operating_point` cannot reject it.
            let v = variable.operating_point(i).expect("in range"); // fcdpm-lint: allow(panic-policy)
            let o = onoff.operating_point(i).expect("in range"); // fcdpm-lint: allow(panic-policy)
            let _ = writeln!(
                out,
                "{:.0},{:.4},{:.4},{:.4}",
                i.milliamps(),
                variable.stack().stack_efficiency(v.i_fc, zeta).value(),
                v.efficiency.value(),
                o.efficiency.value()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let out = execute(&Command::Help).unwrap().text;
        assert!(out.contains("USAGE"));
        assert!(out.contains("experiment"));
        assert!(out.contains("analyze"));
    }

    #[test]
    fn analyze_runs_clean_on_this_workspace_in_every_format() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_owned();
        for format in [LintFormat::Human, LintFormat::Json, LintFormat::Sarif] {
            let out = execute(&Command::Analyze {
                format,
                baseline: None,
                root: Some(root.clone()),
                write_baseline: false,
                changed: false,
                no_cache: true,
                timings: false,
                fail_on: FailOn::Warning,
            })
            .unwrap();
            assert!(
                out.ok,
                "committed workspace must analyze clean:\n{}",
                out.text
            );
        }
        let sarif = execute(&Command::Analyze {
            format: LintFormat::Sarif,
            baseline: None,
            root: Some(root),
            write_baseline: false,
            changed: false,
            no_cache: true,
            timings: false,
            fail_on: FailOn::Warning,
        })
        .unwrap()
        .text;
        assert!(sarif.contains("\"fcdpm-analyze\""));
        assert!(sarif.contains("sarif-schema-2.1.0"));
    }

    #[test]
    fn lint_sarif_carries_the_lint_catalogue() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_owned();
        let out = execute(&Command::Lint {
            format: LintFormat::Sarif,
            baseline: None,
            root: Some(root),
            write_baseline: false,
        })
        .unwrap();
        assert!(out.ok, "committed workspace must lint clean:\n{}", out.text);
        assert!(out.text.contains("\"fcdpm-lint\""));
        assert!(out.text.contains("panic-policy"));
    }

    #[test]
    fn experiment_all_has_three_rows() {
        let out = execute(&Command::Experiment {
            id: ExperimentId::Exp1,
            capacity_mamin: 100.0,
            seed: None,
            policy: PolicyChoice::All,
        })
        .unwrap()
        .text;
        assert!(out.contains("Conv-DPM"));
        assert!(out.contains("ASAP-DPM"));
        assert!(out.contains("FC-DPM"));
        assert!(out.contains("100.0%"), "baseline normalizes to itself");
    }

    #[test]
    fn experiment_single_policy() {
        let out = execute(&Command::Experiment {
            id: ExperimentId::Exp2,
            capacity_mamin: 100.0,
            seed: Some(5),
            policy: PolicyChoice::FcDpm,
        })
        .unwrap()
        .text;
        assert!(out.contains("FC-DPM"));
        assert!(!out.contains("ASAP-DPM"));
    }

    #[test]
    fn trace_csv_has_header_and_rows() {
        let out = execute(&Command::Trace {
            kind: TraceKind::Synthetic,
            seed: Some(1),
            minutes: 2.0,
        })
        .unwrap()
        .text;
        let mut lines = out.lines();
        assert_eq!(lines.next().unwrap(), "idle_s,active_s,active_w");
        assert!(lines.count() >= 4);
    }

    #[test]
    fn trace_is_seed_deterministic() {
        let make = |seed| {
            execute(&Command::Trace {
                kind: TraceKind::Camcorder,
                seed: Some(seed),
                minutes: 2.0,
            })
            .unwrap()
            .text
        };
        assert_eq!(make(9), make(9));
        assert_ne!(make(9), make(10));
    }

    #[test]
    fn simulate_runs_csv_trace() {
        let dir = std::env::temp_dir().join("fcdpm-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        std::fs::write(&path, "idle_s,active_s,active_w\n15,3,14\n12,2,13\n").unwrap();
        let out = execute(&Command::Simulate {
            path: path.to_string_lossy().into_owned(),
            device: DeviceChoice::Exp2,
            capacity_mamin: 100.0,
        })
        .unwrap()
        .text;
        assert!(out.contains("FC-DPM"));
        assert!(out.contains("100.0%"));
    }

    #[test]
    fn simulate_reports_missing_file() {
        let err = execute(&Command::Simulate {
            path: "/definitely/not/here.csv".into(),
            device: DeviceChoice::Camcorder,
            capacity_mamin: 100.0,
        })
        .unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn faults_quick_sweep_is_worker_invariant() {
        let dir = std::env::temp_dir().join("fcdpm-faults-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let run = |workers: usize| {
            execute(&Command::Faults {
                quick: true,
                seed: None,
                jobs: Some(workers),
                out: Some(dir.to_string_lossy().into_owned()),
            })
            .unwrap()
            .text
        };
        let manifest_path = dir.join("faults-dac02007.manifest.json");
        let text = run(2);
        assert!(text.contains("control pair bit-identical: yes"), "{text}");
        assert!(text.contains("starvation/resilient"), "{text}");
        assert!(text.contains("combined/conv"), "{text}");
        let two_workers = std::fs::read_to_string(&manifest_path).unwrap();
        run(1);
        let one_worker = std::fs::read_to_string(&manifest_path).unwrap();
        assert_eq!(
            two_workers, one_worker,
            "deterministic manifest must not depend on worker count"
        );
    }

    #[test]
    fn bench_history_tracks_drift_across_runs() {
        let dir = std::env::temp_dir().join("fcdpm-bench-cli-test");
        // Start from a clean slate so the sequence numbering is known.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let payload = dir.join("bench.json");
        let run = || {
            execute(&Command::Bench {
                quick: true,
                out: Some(payload.to_string_lossy().into_owned()),
            })
            .unwrap()
            .text
        };
        let first = run();
        assert!(first.contains("bench history: first entry"), "{first}");
        assert!(dir.join("bench-history/bench-0001.json").exists());
        let second = run();
        assert!(second.contains("drift vs"), "{second}");
        assert!(second.contains("no drift"), "{second}");
        assert!(dir.join("bench-history/bench-0002.json").exists());
        // An unreadable (pre-schema-bump) previous entry is tolerated.
        std::fs::write(
            dir.join("bench-history/bench-0003.json"),
            "{\"schema\": \"fcdpm-bench/1\"}",
        )
        .unwrap();
        let third = run();
        assert!(third.contains("unreadable (schema change)"), "{third}");
        assert!(dir.join("bench-history/bench-0004.json").exists());
    }

    #[test]
    fn lifetime_renders_three_rows() {
        let out = execute(&Command::Lifetime {
            moles: 0.5,
            capacity_mamin: 100.0,
        })
        .unwrap()
        .text;
        assert!(out.contains("Conv-DPM"));
        assert!(out.contains("FC-DPM"));
        assert!(out.contains("lifetime"));
    }

    #[test]
    fn sizing_renders() {
        let out = execute(&Command::Sizing { tolerance_as: 0.1 })
            .unwrap()
            .text;
        assert!(out.contains("smallest storage"));
        assert!(out.contains("mA*min"));
    }

    #[test]
    fn curves_render() {
        let stack = execute(&Command::Curve { stack: true }).unwrap().text;
        assert!(stack.starts_with("i_fc_ma"));
        assert_eq!(stack.lines().count(), 32);
        let eff = execute(&Command::Curve { stack: false }).unwrap().text;
        assert!(eff.starts_with("i_f_ma"));
        assert_eq!(eff.lines().count(), 24);
    }
}
