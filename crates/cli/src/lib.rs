//! Implementation of the `fcdpm` command-line tool.
//!
//! The binary is a thin wrapper around [`parse`] + [`execute`], both of
//! which are pure (no process exit, output returned as a `String`) so the
//! whole surface is unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{
    parse, Command, DeviceChoice, ExperimentId, FailOn, GridAction, LintFormat, ParseCliError,
    PolicyChoice, TraceKind,
};
pub use commands::{execute, CmdOutput};

/// The usage text printed by `fcdpm help` and on parse errors.
#[must_use]
pub fn usage() -> String {
    "\
fcdpm — fuel-efficient dynamic power management toolkit (DAC'07 reproduction)

USAGE:
    fcdpm experiment <exp1|exp2> [--capacity-mamin <N>] [--seed <N>] [--policy <conv|asap|fcdpm|all>]
    fcdpm trace <camcorder|synthetic> [--seed <N>] [--minutes <N>]
    fcdpm curve <stack|efficiency>
    fcdpm simulate <trace.csv> [--device <camcorder|exp2>] [--capacity-mamin <N>]
    fcdpm lifetime [--moles <N>] [--capacity-mamin <N>]
    fcdpm sizing [--tolerance-as <N>]
    fcdpm batch <grid.json> [--jobs <N>] [--out <DIR>]
    fcdpm grid <run|resume> <spec.json> [--jobs <N>] [--shard-size <N>] [--out <DIR>] [--run-id <ID>]
                            [--max-attempts <N>] [--retry-backoff-ms <N>] [--checkpoint-batch <N>]
    fcdpm grid status <run-dir>
    fcdpm grid gc <grid-root> [--dry-run]
    fcdpm faults [--quick] [--seed <N>] [--jobs <N>] [--out <DIR>]
    fcdpm bench [--quick] [--out <FILE>]
    fcdpm lint [--format <human|json|sarif>] [--baseline <FILE>] [--root <DIR>] [--write-baseline]
    fcdpm analyze [--format <human|json|sarif>] [--baseline <FILE>] [--root <DIR>] [--write-baseline]
                  [--changed] [--no-cache] [--timings] [--fail-on <error|warning|never>]
    fcdpm help

COMMANDS:
    experiment   run the paper's Experiment 1 or 2 and print the fuel table
    trace        generate a workload trace as CSV on stdout
    curve        print the stack I-V-P curve or the system-efficiency curves
    simulate     run the three policies on a CSV trace (idle_s,active_s,active_w)
    lifetime     run Experiment 1 cyclically until a hydrogen tank runs dry
    sizing       smallest storage capacity for unconstrained FC-DPM (Exp. 1)
    batch        run a JSON job grid on the worker pool, write a run manifest
    grid         fleet-scale engine: lazy cross-product GridSpec, sharded
                 streaming spill to shard-*.jsonl, digest-keyed resume,
                 mid-shard checkpointing, bounded retry, crash-artifact gc
    faults       seeded fault-injection sweep: canonical schedules under plain,
                 resilient and Conv-DPM policies, deterministic manifest
    bench        wall-clock harness: fixture grid + chunk-coalescing A/B,
                 deterministic payload to BENCH_4.json (timings on stdout)
    lint         static-analysis pass: determinism, unit-safety, panic policy,
                 crate hygiene (exit 1 on any non-baselined finding)
    analyze      semantic pass: crate layering, unit-dimension dataflow,
                 paper-constants conformance, job-grid feasibility,
                 interprocedural taint/locks and coalescing-hint soundness,
                 incremental via the digest-keyed analyze-cache.json
    help         show this message
"
    .to_owned()
}
