//! Balance-of-plant controller load models.
//!
//! The FC system's controller — cathode air-blow fan, cooling fan, purge
//! valve solenoid and microcontroller — draws current `I_ctrl` from the
//! DC-DC output, so the usable system output is `I_F = I_dc − I_ctrl`
//! (Section 2.1). The paper studies two configurations (Figure 3):
//!
//! * a **variable-speed fan** whose speed is proportional to the load
//!   current, giving the higher efficiency curve 3(b);
//! * a **constant-speed air-blow fan plus an on/off cooling fan** that
//!   switches on above a current threshold, the flatter curve 3(c) used in
//!   the authors' earlier work.

use fcdpm_units::Amps;

/// The controller's current draw as a function of the FC system output
/// current `I_F`.
pub trait ControllerLoad: core::fmt::Debug {
    /// Controller current `I_ctrl` when the system delivers `i_f` to the
    /// load side.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `i_f` is negative.
    fn current(&self, i_f: Amps) -> Amps;
}

/// Proportional (variable-speed) fan control: `I_ctrl = base + k·I_F`.
///
/// The fan speed — and so the fan current — tracks the load, avoiding the
/// waste of running fans at full speed for light loads.
///
/// # Examples
///
/// ```
/// use fcdpm_units::Amps;
/// use fcdpm_fuelcell::{ControllerLoad, VariableSpeedFanController};
///
/// let ctrl = VariableSpeedFanController::dac07();
/// assert!(ctrl.current(Amps::new(0.1)) < ctrl.current(Amps::new(1.2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VariableSpeedFanController {
    base: Amps,
    slope: f64,
}

impl VariableSpeedFanController {
    /// Creates a proportional controller with standby draw `base` and fan
    /// gain `slope` (amps of fan current per amp of output).
    ///
    /// # Panics
    ///
    /// Panics if `base` or `slope` is negative.
    #[must_use]
    #[track_caller]
    pub fn new(base: Amps, slope: f64) -> Self {
        assert!(!base.is_negative(), "base draw must be non-negative");
        assert!(slope >= 0.0, "fan gain must be non-negative");
        Self { base, slope }
    }

    /// The configuration calibrated for the paper's Figure 3(b) setup:
    /// 8 mA of microcontroller draw plus 60 mA of fan per amp of output.
    #[must_use]
    pub fn dac07() -> Self {
        Self::new(Amps::from_milli(8.0), 0.06)
    }
}

impl ControllerLoad for VariableSpeedFanController {
    fn current(&self, i_f: Amps) -> Amps {
        assert!(!i_f.is_negative(), "output current must be non-negative");
        self.base + i_f * self.slope
    }
}

/// Constant-speed air-blow fan plus an on/off cooling fan that engages
/// above `cooling_threshold` (Figure 3(c): "cooling fan is on" above
/// ≈ 600 mA).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OnOffFanController {
    base: Amps,
    blow_fan: Amps,
    cooling_fan: Amps,
    cooling_threshold: Amps,
}

impl OnOffFanController {
    /// Creates an on/off controller.
    ///
    /// # Panics
    ///
    /// Panics if any current is negative.
    #[must_use]
    #[track_caller]
    pub fn new(base: Amps, blow_fan: Amps, cooling_fan: Amps, cooling_threshold: Amps) -> Self {
        for (v, name) in [
            (base, "base"),
            (blow_fan, "blow_fan"),
            (cooling_fan, "cooling_fan"),
            (cooling_threshold, "cooling_threshold"),
        ] {
            assert!(!v.is_negative(), "{name} must be non-negative");
        }
        Self {
            base,
            blow_fan,
            cooling_fan,
            cooling_threshold,
        }
    }

    /// The configuration of the authors' earlier work (Figure 3(c)):
    /// 8 mA microcontroller, 25 mA constant blow fan, 35 mA cooling fan
    /// engaging above 600 mA of output.
    #[must_use]
    pub fn dac07() -> Self {
        Self::new(
            Amps::from_milli(8.0),
            Amps::from_milli(25.0),
            Amps::from_milli(35.0),
            Amps::from_milli(600.0),
        )
    }

    /// Returns `true` if the cooling fan runs at output current `i_f`.
    #[must_use]
    pub fn cooling_on(&self, i_f: Amps) -> bool {
        i_f > self.cooling_threshold
    }
}

impl ControllerLoad for OnOffFanController {
    fn current(&self, i_f: Amps) -> Amps {
        assert!(!i_f.is_negative(), "output current must be non-negative");
        let mut total = self.base + self.blow_fan;
        if self.cooling_on(i_f) {
            total += self.cooling_fan;
        }
        total
    }
}

/// A fixed controller draw, independent of load — useful for ablations.
#[derive(Debug, Default, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FixedController {
    draw: Amps,
}

impl FixedController {
    /// Creates a controller that always draws `draw`.
    ///
    /// # Panics
    ///
    /// Panics if `draw` is negative.
    #[must_use]
    #[track_caller]
    pub fn new(draw: Amps) -> Self {
        assert!(!draw.is_negative(), "draw must be non-negative");
        Self { draw }
    }
}

impl ControllerLoad for FixedController {
    fn current(&self, i_f: Amps) -> Amps {
        assert!(!i_f.is_negative(), "output current must be non-negative");
        self.draw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_fan_scales_with_load() {
        let c = VariableSpeedFanController::dac07();
        let lo = c.current(Amps::new(0.1));
        let hi = c.current(Amps::new(1.2));
        assert!((lo.amps() - 0.014).abs() < 1e-12);
        assert!((hi.amps() - 0.080).abs() < 1e-12);
    }

    #[test]
    fn on_off_fan_steps_at_threshold() {
        let c = OnOffFanController::dac07();
        let below = c.current(Amps::new(0.5));
        let above = c.current(Amps::new(0.7));
        assert!(!c.cooling_on(Amps::new(0.5)));
        assert!(c.cooling_on(Amps::new(0.7)));
        assert!((above.amps() - below.amps() - 0.035).abs() < 1e-12);
        // Threshold itself is exclusive.
        assert!(!c.cooling_on(Amps::new(0.6)));
    }

    #[test]
    fn fixed_controller_constant() {
        let c = FixedController::new(Amps::from_milli(10.0));
        assert_eq!(c.current(Amps::ZERO), Amps::from_milli(10.0));
        assert_eq!(c.current(Amps::new(1.2)), Amps::from_milli(10.0));
        assert_eq!(
            FixedController::default().current(Amps::new(1.0)),
            Amps::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_output_rejected() {
        let _ = VariableSpeedFanController::dac07().current(Amps::new(-0.1));
    }

    #[test]
    fn trait_object_usable() {
        let boxed: Box<dyn ControllerLoad> = Box::new(OnOffFanController::dac07());
        assert!(boxed.current(Amps::new(1.0)).amps() > 0.0);
    }
}
