//! Fuel accounting: Gibbs free energy, hydrogen flow, gauges and tanks.
//!
//! The paper measures that the Gibbs free energy released per second is
//! proportional to the stack current: `ΔE_Gibbs = ζ·I_fc` with ζ ≈ 37.5
//! (in volt-equivalents, i.e. joules per ampere-second). Fuel consumption
//! is therefore accounted as `∫ I_fc dt` in ampere-seconds, and converted
//! to joules of Gibbs energy or moles of hydrogen when needed.

use fcdpm_units::{Amps, Charge, Energy, Seconds, Volts};

use crate::FuelCellError;

/// Faraday constant (C/mol).
pub const FARADAY: f64 = 96_485.332_12;

/// Molar Gibbs free energy of the hydrogen oxidation reaction at room
/// temperature (J/mol), per Larminie & Dicks.
pub const GIBBS_H2_J_PER_MOL: f64 = 237_130.0;

/// The measured proportionality ζ between stack current and Gibbs
/// free-energy release: `ΔE_Gibbs/s = ζ · I_fc` (Section 2.3).
///
/// ζ has units of volts (J per A·s). The paper measures ζ ≈ 37.5 for the
/// 20-cell BCS stack. The ideal electrochemical value for a perfectly
/// fuel-utilizing stack would be `cells · ΔG_molar / (2F)`; the measured ζ
/// is higher because purge losses and crossover waste fuel, captured by the
/// [`fuel utilization`](GibbsCoefficient::fuel_utilization) factor.
///
/// # Examples
///
/// ```
/// use fcdpm_units::{Amps, Seconds};
/// use fcdpm_fuelcell::GibbsCoefficient;
///
/// let zeta = GibbsCoefficient::dac07();
/// let e = zeta.gibbs_energy(Amps::new(1.3) * Seconds::new(30.0));
/// assert!((e.joules() - 1.3 * 30.0 * 37.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GibbsCoefficient {
    zeta: f64,
    cells: u32,
}

impl GibbsCoefficient {
    /// Creates a coefficient from a measured ζ (volt-equivalents) and the
    /// stack cell count.
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::InvalidParameter`] if `zeta` is not a
    /// positive finite number or `cells` is zero.
    pub fn new(zeta: f64, cells: u32) -> Result<Self, FuelCellError> {
        if !zeta.is_finite() || zeta <= 0.0 {
            return Err(FuelCellError::InvalidParameter { name: "zeta" });
        }
        if cells == 0 {
            return Err(FuelCellError::InvalidParameter { name: "cells" });
        }
        Ok(Self { zeta, cells })
    }

    /// The paper's measured value: ζ ≈ 37.5 for the 20-cell BCS stack.
    /// Constructed directly — both literals trivially satisfy the
    /// [`new`](Self::new) invariants (positive finite ζ, nonzero cells).
    #[must_use]
    pub fn dac07() -> Self {
        Self {
            zeta: 37.5,
            cells: 20,
        }
    }

    /// ζ expressed in volts (joules of Gibbs energy per ampere-second of
    /// stack charge).
    #[must_use]
    pub fn volts_equivalent(self) -> f64 {
        self.zeta
    }

    /// Same as [`volts_equivalent`](Self::volts_equivalent) but typed.
    #[must_use]
    pub fn as_volts(self) -> Volts {
        Volts::new(self.zeta)
    }

    /// Gibbs free energy released for a given integrated stack charge.
    #[must_use]
    pub fn gibbs_energy(self, stack_charge: Charge) -> Energy {
        Energy::new(self.zeta * stack_charge.amp_seconds())
    }

    /// Gibbs free-energy release rate at stack current `i_fc` (watts).
    #[must_use]
    pub fn gibbs_rate(self, i_fc: Amps) -> f64 {
        self.zeta * i_fc.amps()
    }

    /// Hydrogen consumed (mol) for a given integrated stack charge,
    /// including the fuel-utilization loss implied by the measured ζ.
    ///
    /// An ideal stack consumes `cells·Q/(2F)` mol; a real one consumes
    /// `ζ·Q / ΔG_molar` mol (all the Gibbs energy the fuel carries).
    #[must_use]
    pub fn hydrogen_moles(self, stack_charge: Charge) -> f64 {
        self.gibbs_energy(stack_charge).joules() / GIBBS_H2_J_PER_MOL
    }

    /// The fraction of fed hydrogen that does electrical work, implied by
    /// the measured ζ: `u = cells·ΔG_molar / (2F·ζ)`.
    ///
    /// For the paper's stack this comes out to ≈ 0.65, a plausible value
    /// for a purge-valve system.
    #[must_use]
    pub fn fuel_utilization(self) -> f64 {
        f64::from(self.cells) * GIBBS_H2_J_PER_MOL / (2.0 * FARADAY * self.zeta)
    }
}

impl Default for GibbsCoefficient {
    fn default() -> Self {
        Self::dac07()
    }
}

/// Accumulates fuel consumption (`∫ I_fc dt`) over a simulation.
///
/// # Examples
///
/// ```
/// use fcdpm_units::{Amps, Seconds};
/// use fcdpm_fuelcell::FuelGauge;
///
/// let mut gauge = FuelGauge::new();
/// gauge.consume(Amps::new(0.448), Seconds::new(30.0));
/// assert!((gauge.total().amp_seconds() - 13.44).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FuelGauge {
    total: Charge,
    elapsed: Seconds,
}

impl FuelGauge {
    /// Creates an empty gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `dt` seconds of operation at stack current `i_fc`.
    ///
    /// # Panics
    ///
    /// Panics if `i_fc` or `dt` is negative.
    #[track_caller]
    pub fn consume(&mut self, i_fc: Amps, dt: Seconds) {
        assert!(!i_fc.is_negative(), "stack current must be non-negative");
        assert!(!dt.is_negative(), "duration must be non-negative");
        self.total += i_fc * dt;
        self.elapsed += dt;
    }

    /// Total fuel consumed so far, as integrated stack charge.
    #[must_use]
    pub fn total(&self) -> Charge {
        self.total
    }

    /// Total wall-clock time recorded.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Average stack current over the recorded interval.
    ///
    /// Returns zero for an empty gauge.
    #[must_use]
    pub fn mean_stack_current(&self) -> Amps {
        if self.elapsed.is_zero() {
            Amps::ZERO
        } else {
            self.total / self.elapsed
        }
    }

    /// Merges another gauge's records into this one.
    pub fn merge(&mut self, other: &Self) {
        self.total += other.total;
        self.elapsed += other.elapsed;
    }
}

/// A finite hydrogen supply, for operational-lifetime estimation.
///
/// Lifetime is inversely proportional to the fuel consumption rate
/// (Section 5.1), so a tank plus a measured consumption rate yields the
/// system lifetime the paper reports.
///
/// # Examples
///
/// ```
/// use fcdpm_units::{Amps, Charge};
/// use fcdpm_fuelcell::{GibbsCoefficient, HydrogenTank};
///
/// let tank = HydrogenTank::from_stack_charge(Charge::from_amp_hours(10.0));
/// let life = tank.lifetime_at(Amps::new(0.448));
/// assert!((life.seconds() - 10.0 * 3600.0 / 0.448).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HydrogenTank {
    /// Capacity expressed as the total stack charge the tank can sustain.
    capacity: Charge,
}

impl HydrogenTank {
    /// Creates a tank holding enough fuel for `capacity` of integrated
    /// stack charge.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is negative.
    #[must_use]
    #[track_caller]
    pub fn from_stack_charge(capacity: Charge) -> Self {
        assert!(
            !capacity.is_negative(),
            "tank capacity must be non-negative"
        );
        Self { capacity }
    }

    /// Creates a tank from an amount of hydrogen (mol) and the stack's ζ.
    ///
    /// # Panics
    ///
    /// Panics if `moles` is negative or NaN.
    #[must_use]
    #[track_caller]
    pub fn from_hydrogen_moles(moles: f64, zeta: GibbsCoefficient) -> Self {
        assert!(moles >= 0.0, "hydrogen amount must be non-negative");
        let energy = moles * GIBBS_H2_J_PER_MOL;
        Self::from_stack_charge(Charge::new(energy / zeta.volts_equivalent()))
    }

    /// Tank capacity as integrated stack charge.
    #[must_use]
    pub fn capacity(&self) -> Charge {
        self.capacity
    }

    /// Remaining lifetime when fuel is drawn at constant stack current
    /// `i_fc`.
    ///
    /// Returns `Seconds::new(f64::INFINITY)` for a zero draw.
    #[must_use]
    pub fn lifetime_at(&self, i_fc: Amps) -> Seconds {
        if i_fc.is_zero() {
            Seconds::new(f64::INFINITY)
        } else {
            self.capacity / i_fc
        }
    }

    /// Remaining fraction of the tank after `consumed` stack charge.
    ///
    /// Saturates at zero when over-drawn.
    #[must_use]
    pub fn remaining_fraction(&self, consumed: Charge) -> f64 {
        if self.capacity.is_zero() {
            0.0
        } else {
            (1.0 - consumed / self.capacity).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeta_constructors() {
        assert!(GibbsCoefficient::new(37.5, 20).is_ok());
        assert!(GibbsCoefficient::new(0.0, 20).is_err());
        assert!(GibbsCoefficient::new(-1.0, 20).is_err());
        assert!(GibbsCoefficient::new(f64::NAN, 20).is_err());
        assert!(GibbsCoefficient::new(37.5, 0).is_err());
        assert_eq!(GibbsCoefficient::default(), GibbsCoefficient::dac07());
    }

    #[test]
    fn gibbs_energy_is_linear_in_charge() {
        let zeta = GibbsCoefficient::dac07();
        let e1 = zeta.gibbs_energy(Charge::new(1.0));
        let e2 = zeta.gibbs_energy(Charge::new(2.0));
        assert_eq!(e1.joules(), 37.5);
        assert_eq!(e2.joules(), 75.0);
        assert_eq!(zeta.as_volts().volts(), 37.5);
        assert_eq!(zeta.gibbs_rate(Amps::new(2.0)), 75.0);
    }

    #[test]
    fn fuel_utilization_plausible() {
        let u = GibbsCoefficient::dac07().fuel_utilization();
        assert!((0.5..0.8).contains(&u), "utilization {u} implausible");
    }

    #[test]
    fn hydrogen_moles_accounting() {
        let zeta = GibbsCoefficient::dac07();
        // 1 A·s → 37.5 J of Gibbs energy → 37.5/237130 mol.
        let mol = zeta.hydrogen_moles(Charge::new(1.0));
        assert!((mol - 37.5 / 237_130.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_accumulates() {
        let mut g = FuelGauge::new();
        g.consume(Amps::new(0.5), Seconds::new(10.0));
        g.consume(Amps::new(1.0), Seconds::new(5.0));
        assert_eq!(g.total().amp_seconds(), 10.0);
        assert_eq!(g.elapsed().seconds(), 15.0);
        assert!((g.mean_stack_current().amps() - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_merge() {
        let mut a = FuelGauge::new();
        a.consume(Amps::new(0.5), Seconds::new(10.0));
        let mut b = FuelGauge::new();
        b.consume(Amps::new(0.5), Seconds::new(10.0));
        a.merge(&b);
        assert_eq!(a.total().amp_seconds(), 10.0);
        assert_eq!(a.elapsed().seconds(), 20.0);
    }

    #[test]
    fn empty_gauge_mean_is_zero() {
        assert_eq!(FuelGauge::new().mean_stack_current(), Amps::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn gauge_rejects_negative_current() {
        FuelGauge::new().consume(Amps::new(-0.1), Seconds::new(1.0));
    }

    #[test]
    fn tank_lifetime_inverse_in_current() {
        let tank = HydrogenTank::from_stack_charge(Charge::new(100.0));
        let slow = tank.lifetime_at(Amps::new(0.308));
        let fast = tank.lifetime_at(Amps::new(0.408));
        // Lifetime ratio = inverse fuel-rate ratio (the paper's 1.32×).
        assert!((slow / fast - 0.408 / 0.308).abs() < 1e-12);
    }

    #[test]
    fn tank_zero_draw_is_infinite() {
        let tank = HydrogenTank::from_stack_charge(Charge::new(1.0));
        assert!(tank.lifetime_at(Amps::ZERO).seconds().is_infinite());
    }

    #[test]
    fn tank_from_moles_round_trips() {
        let zeta = GibbsCoefficient::dac07();
        let tank = HydrogenTank::from_hydrogen_moles(1.0, zeta);
        assert!((zeta.hydrogen_moles(tank.capacity()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remaining_fraction_saturates() {
        let tank = HydrogenTank::from_stack_charge(Charge::new(10.0));
        assert_eq!(tank.remaining_fraction(Charge::new(5.0)), 0.5);
        assert_eq!(tank.remaining_fraction(Charge::new(20.0)), 0.0);
        let empty = HydrogenTank::from_stack_charge(Charge::ZERO);
        assert_eq!(empty.remaining_fraction(Charge::ZERO), 0.0);
    }
}
