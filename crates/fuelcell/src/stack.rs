//! Fuel-cell stack polarization model.
//!
//! The stack is modeled with the classic Larminie–Dicks static polarization
//! equation ("Fuel Cell Systems Explained", the paper's reference \[12\]):
//!
//! ```text
//! V(I) = E_oc − a·ln(1 + I/i0) − r·I − m·(e^(n·I) − 1)
//! ```
//!
//! with an activation term (`a`, `i0`), an ohmic term (`r`) and a
//! concentration/mass-transport term (`m`, `n`). The `ln(1 + I/i0)` form is
//! a standard smoothing of `ln(I/i0)` that keeps the curve defined at zero
//! current (where it yields exactly the open-circuit voltage `E_oc`).
//!
//! The default parameters are calibrated to the paper's **BCS 20 W,
//! 20-cell, room-temperature hydrogen stack** (Figure 2): open-circuit
//! voltage 18.2 V, maximum power ≈ 20 W, and a stack current of ≈ 1.3 A
//! when the system delivers 1.2 A at the 12 V bus.

use fcdpm_units::{Amps, Efficiency, Volts, Watts};

use crate::fuel::GibbsCoefficient;
use crate::FuelCellError;

/// A static polarization (I-V) model of a fuel-cell stack.
///
/// # Examples
///
/// ```
/// use fcdpm_units::Amps;
/// use fcdpm_fuelcell::PolarizationCurve;
///
/// let stack = PolarizationCurve::bcs_20w();
/// let v = stack.voltage(Amps::new(0.0));
/// assert!((v.volts() - 18.2).abs() < 1e-9); // open-circuit voltage
/// assert!(stack.voltage(Amps::new(1.0)) < v); // voltage droops under load
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PolarizationCurve {
    /// Open-circuit stack voltage `E_oc` (V).
    e_oc: f64,
    /// Activation (Tafel) slope `a` (V).
    a: f64,
    /// Exchange-current scale `i0` (A).
    i0: f64,
    /// Ohmic (area-specific) resistance `r` (Ω).
    r: f64,
    /// Concentration-loss amplitude `m` (V).
    m: f64,
    /// Concentration-loss exponent `n` (1/A).
    n: f64,
    /// Number of series cells (used for hydrogen-flow conversion).
    cells: u32,
}

/// One operating point on the stack curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StackPoint {
    /// Stack current `I_fc`.
    pub current: Amps,
    /// Stack terminal voltage `V_fc`.
    pub voltage: Volts,
    /// Stack output power `V_fc · I_fc`.
    pub power: Watts,
}

impl PolarizationCurve {
    /// Creates a polarization curve from raw Larminie–Dicks parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::InvalidParameter`] if any parameter is
    /// non-finite, if `e_oc`, `i0` or `cells` is non-positive, or if any
    /// loss coefficient is negative.
    pub fn new(
        e_oc: f64,
        a: f64,
        i0: f64,
        r: f64,
        m: f64,
        n: f64,
        cells: u32,
    ) -> Result<Self, FuelCellError> {
        let invalid = |name| Err(FuelCellError::InvalidParameter { name });
        if !e_oc.is_finite() || e_oc <= 0.0 {
            return invalid("e_oc");
        }
        if !a.is_finite() || a < 0.0 {
            return invalid("a");
        }
        if !i0.is_finite() || i0 <= 0.0 {
            return invalid("i0");
        }
        if !r.is_finite() || r < 0.0 {
            return invalid("r");
        }
        if !m.is_finite() || m < 0.0 {
            return invalid("m");
        }
        if !n.is_finite() || n < 0.0 {
            return invalid("n");
        }
        if cells == 0 {
            return invalid("cells");
        }
        Ok(Self {
            e_oc,
            a,
            i0,
            r,
            m,
            n,
            cells,
        })
    }

    /// The paper's BCS 20 W, 20-cell hydrogen stack (Figure 2), calibrated
    /// so that the open-circuit voltage is 18.2 V, the maximum power is
    /// ≈ 20 W, and the stack current is ≈ 1.3 A when the composed system
    /// delivers 1.2 A at the 12 V bus.
    ///
    /// Infallible by construction: the calibration constants are proven
    /// valid against [`Self::new`]'s rules at compile time.
    #[must_use]
    pub fn bcs_20w() -> Self {
        const E_OC: f64 = 18.2;
        const A: f64 = 0.55;
        const I0: f64 = 0.01;
        const R: f64 = 1.1;
        const M: f64 = 0.01;
        const N: f64 = 3.0;
        const CELLS: u32 = 20;
        const _: () = {
            assert!(E_OC.is_finite() && E_OC > 0.0);
            assert!(A.is_finite() && A >= 0.0);
            assert!(I0.is_finite() && I0 > 0.0);
            assert!(R.is_finite() && R >= 0.0);
            assert!(M.is_finite() && M >= 0.0);
            assert!(N.is_finite() && N >= 0.0);
            assert!(CELLS > 0);
        };
        Self {
            e_oc: E_OC,
            a: A,
            i0: I0,
            r: R,
            m: M,
            n: N,
            cells: CELLS,
        }
    }

    /// Number of series cells in the stack.
    #[must_use]
    pub fn cells(&self) -> u32 {
        self.cells
    }

    /// Open-circuit voltage.
    #[must_use]
    pub fn open_circuit_voltage(&self) -> Volts {
        Volts::new(self.e_oc)
    }

    /// Terminal voltage at stack current `i`.
    ///
    /// The model is evaluated for any non-negative current; at high
    /// currents the concentration term drives the voltage to (and below)
    /// zero, which is clamped to zero since a stack cannot be driven to
    /// negative terminal voltage by its own load.
    ///
    /// # Panics
    ///
    /// Panics if `i` is negative.
    #[must_use]
    #[track_caller]
    pub fn voltage(&self, i: Amps) -> Volts {
        assert!(!i.is_negative(), "stack current must be non-negative");
        let i = i.amps();
        let activation = self.a * (1.0 + i / self.i0).ln();
        let ohmic = self.r * i;
        let concentration = self.m * ((self.n * i).exp() - 1.0);
        Volts::new((self.e_oc - activation - ohmic - concentration).max(0.0))
    }

    /// Output power at stack current `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is negative.
    #[must_use]
    pub fn power(&self, i: Amps) -> Watts {
        self.voltage(i) * i
    }

    /// The full operating point at stack current `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is negative.
    #[must_use]
    pub fn point(&self, i: Amps) -> StackPoint {
        StackPoint {
            current: i,
            voltage: self.voltage(i),
            power: self.power(i),
        }
    }

    /// Stack conversion efficiency at current `i` for Gibbs coefficient
    /// `zeta`: `η_stack = V_fc / ζ` (Section 2.3; the `I_fc` in numerator
    /// and denominator of the power ratio cancels).
    ///
    /// # Panics
    ///
    /// Panics if `i` is negative.
    #[must_use]
    pub fn stack_efficiency(&self, i: Amps, zeta: GibbsCoefficient) -> Efficiency {
        Efficiency::saturating(self.voltage(i).volts() / zeta.volts_equivalent())
    }

    /// Locates the maximum-power point by golden-section search on the
    /// unimodal power curve.
    ///
    /// The search is seeded with a coarse scan so it works even if the
    /// model parameters place the peak far from the default bracket.
    #[must_use]
    pub fn max_power_point(&self) -> StackPoint {
        // Coarse scan to bracket the peak.
        let mut best_i = 0.0f64;
        let mut best_p = 0.0f64;
        let mut hi = 1.0f64;
        // Expand until power has clearly fallen off (or voltage hit zero).
        loop {
            let p = self.power(Amps::new(hi)).watts();
            if p > best_p {
                best_p = p;
                best_i = hi;
            }
            if self.voltage(Amps::new(hi)).volts() == 0.0 || hi > 1.0e3 {
                break;
            }
            hi *= 1.3;
        }
        let mut lo = (best_i / 1.3).max(0.0);
        let mut hi = best_i * 1.3;
        // Golden-section refine.
        const PHI: f64 = 0.618_033_988_749_894_8;
        for _ in 0..200 {
            let c = hi - PHI * (hi - lo);
            let d = lo + PHI * (hi - lo);
            if self.power(Amps::new(c)).watts() < self.power(Amps::new(d)).watts() {
                lo = c;
            } else {
                hi = d;
            }
            if hi - lo < 1e-9 {
                break;
            }
        }
        self.point(Amps::new(0.5 * (lo + hi)))
    }

    /// Samples the I-V-P curve at `count` evenly spaced currents in
    /// `[0, i_max]` — the data behind Figure 2.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2` or `i_max` is negative.
    #[must_use]
    pub fn sample_curve(&self, i_max: Amps, count: usize) -> Vec<StackPoint> {
        assert!(count >= 2, "need at least two sample points");
        (0..count)
            .map(|k| {
                let i = i_max * (k as f64 / (count - 1) as f64);
                self.point(i)
            })
            .collect()
    }

    /// Solves for the stack current that delivers `power`, on the stable
    /// (rising) side of the power curve, by bisection.
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::ExceedsCapacity`] if `power` exceeds the
    /// maximum power point, or [`FuelCellError::OutOfDomain`] if `power`
    /// is negative.
    pub fn current_for_power(&self, power: Watts) -> Result<Amps, FuelCellError> {
        if power.is_negative() {
            return Err(FuelCellError::OutOfDomain {
                current: Amps::ZERO,
            });
        }
        if power.is_zero() {
            return Ok(Amps::ZERO);
        }
        let mpp = self.max_power_point();
        if power > mpp.power {
            return Err(FuelCellError::ExceedsCapacity {
                demanded: power,
                capacity: mpp.power,
            });
        }
        let (mut lo, mut hi) = (0.0f64, mpp.current.amps());
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.power(Amps::new(mid)) < power {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 {
                break;
            }
        }
        let i = Amps::new(0.5 * (lo + hi));
        let residual = (self.power(i).watts() - power.watts()).abs();
        if residual > 1e-6 * power.watts().max(1.0) {
            return Err(FuelCellError::SolverDiverged { residual });
        }
        Ok(i)
    }
}

impl Default for PolarizationCurve {
    fn default() -> Self {
        Self::bcs_20w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> PolarizationCurve {
        PolarizationCurve::bcs_20w()
    }

    #[test]
    fn open_circuit_matches_paper() {
        assert!((stack().voltage(Amps::ZERO).volts() - 18.2).abs() < 1e-12);
    }

    #[test]
    fn voltage_monotonically_decreasing() {
        let s = stack();
        let mut prev = s.voltage(Amps::ZERO);
        for k in 1..=300 {
            let v = s.voltage(Amps::new(k as f64 * 0.01));
            assert!(v <= prev, "voltage increased at {} A", k as f64 * 0.01);
            prev = v;
        }
    }

    #[test]
    fn max_power_near_nameplate() {
        let mpp = stack().max_power_point();
        // BCS "20 W" stack: peak power should be near the nameplate.
        assert!(
            (18.0..23.0).contains(&mpp.power.watts()),
            "max power {} W off nameplate",
            mpp.power.watts()
        );
        assert!(
            (1.4..2.4).contains(&mpp.current.amps()),
            "max power current {} A implausible",
            mpp.current.amps()
        );
    }

    #[test]
    fn power_unimodal_around_peak() {
        let s = stack();
        let mpp = s.max_power_point();
        let before = s.power(mpp.current * 0.8);
        let after = s.power(mpp.current * 1.2);
        assert!(before < mpp.power);
        assert!(after < mpp.power);
    }

    #[test]
    fn stack_current_near_paper_value_at_full_output() {
        // The paper reports I_fc ≈ 1.3 A when the system delivers
        // I_F = 1.2 A at 12 V (≈ 17 W of stack output with converter and
        // controller losses). Check V(1.3 A) is in a range that makes that
        // power deliverable.
        let v = stack().voltage(Amps::new(1.3));
        assert!(
            (13.0..15.0).contains(&v.volts()),
            "V(1.3 A) = {} V outside calibration band",
            v.volts()
        );
    }

    #[test]
    fn stack_efficiency_follows_voltage() {
        let s = stack();
        let zeta = GibbsCoefficient::dac07();
        let lo = s.stack_efficiency(Amps::new(0.1), zeta);
        let hi = s.stack_efficiency(Amps::new(1.3), zeta);
        assert!(lo > hi);
        // η_stack = V/ζ: at open circuit 18.2/37.5 ≈ 48.5 %.
        let oc = s.stack_efficiency(Amps::ZERO, zeta);
        assert!((oc.value() - 18.2 / 37.5).abs() < 1e-9);
    }

    #[test]
    fn current_for_power_round_trips() {
        let s = stack();
        for p in [1.0, 5.0, 10.0, 15.0, 18.0] {
            let i = s.current_for_power(Watts::new(p)).unwrap();
            assert!((s.power(i).watts() - p).abs() < 1e-6);
        }
    }

    #[test]
    fn current_for_power_rejects_over_capacity() {
        let err = stack().current_for_power(Watts::new(100.0)).unwrap_err();
        assert!(matches!(err, FuelCellError::ExceedsCapacity { .. }));
    }

    #[test]
    fn current_for_zero_power_is_zero() {
        assert_eq!(stack().current_for_power(Watts::ZERO).unwrap(), Amps::ZERO);
    }

    #[test]
    fn sample_curve_spans_range() {
        let pts = stack().sample_curve(Amps::new(1.5), 16);
        assert_eq!(pts.len(), 16);
        assert_eq!(pts[0].current, Amps::ZERO);
        assert_eq!(pts[15].current, Amps::new(1.5));
        assert!(pts[0].power.is_zero());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(PolarizationCurve::new(0.0, 0.5, 0.01, 1.0, 0.01, 3.0, 20).is_err());
        assert!(PolarizationCurve::new(18.2, -0.5, 0.01, 1.0, 0.01, 3.0, 20).is_err());
        assert!(PolarizationCurve::new(18.2, 0.5, 0.0, 1.0, 0.01, 3.0, 20).is_err());
        assert!(PolarizationCurve::new(18.2, 0.5, 0.01, -1.0, 0.01, 3.0, 20).is_err());
        assert!(PolarizationCurve::new(18.2, 0.5, 0.01, 1.0, -0.01, 3.0, 20).is_err());
        assert!(PolarizationCurve::new(18.2, 0.5, 0.01, 1.0, 0.01, f64::NAN, 20).is_err());
        assert!(PolarizationCurve::new(18.2, 0.5, 0.01, 1.0, 0.01, 3.0, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_current_panics() {
        let _ = stack().voltage(Amps::new(-0.1));
    }

    #[test]
    fn voltage_clamped_to_zero_at_extreme_current() {
        assert_eq!(stack().voltage(Amps::new(50.0)).volts(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = stack();
        let json = serde_json::to_string(&s).unwrap();
        let back: PolarizationCurve = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
