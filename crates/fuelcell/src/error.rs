//! Error type for fuel-cell system modeling.

use core::fmt;

use fcdpm_units::{Amps, Watts};

/// Errors produced by fuel-cell models.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FuelCellError {
    /// A demanded output power exceeds the stack's maximum power capacity.
    ExceedsCapacity {
        /// The power that was demanded from the stack.
        demanded: Watts,
        /// The stack's maximum deliverable power.
        capacity: Watts,
    },
    /// A current was outside the domain of the model evaluating it
    /// (negative, or beyond the point where the linear efficiency model
    /// `α − β·I` stays positive).
    OutOfDomain {
        /// The offending current.
        current: Amps,
    },
    /// An iterative solver failed to converge.
    SolverDiverged {
        /// The residual at the last iterate, in watts.
        residual: f64,
    },
    /// A model was constructed with parameters that violate its invariants
    /// (e.g. non-positive ζ, non-positive α).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
}

impl fmt::Display for FuelCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ExceedsCapacity { demanded, capacity } => write!(
                f,
                "demanded stack power {demanded:.2} exceeds capacity {capacity:.2}"
            ),
            Self::OutOfDomain { current } => {
                write!(f, "current {current:.3} outside the model's domain")
            }
            Self::SolverDiverged { residual } => {
                write!(
                    f,
                    "operating-point solver diverged (residual {residual:.3e} W)"
                )
            }
            Self::InvalidParameter { name } => {
                write!(f, "invalid model parameter `{name}`")
            }
        }
    }
}

impl std::error::Error for FuelCellError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FuelCellError::ExceedsCapacity {
            demanded: Watts::new(25.0),
            capacity: Watts::new(20.3),
        };
        assert!(e.to_string().contains("exceeds capacity"));
        let e = FuelCellError::OutOfDomain {
            current: Amps::new(-1.0),
        };
        assert!(e.to_string().contains("outside the model's domain"));
        let e = FuelCellError::SolverDiverged { residual: 1e-3 };
        assert!(e.to_string().contains("diverged"));
        let e = FuelCellError::InvalidParameter { name: "zeta" };
        assert!(e.to_string().contains("`zeta`"));
    }
}
