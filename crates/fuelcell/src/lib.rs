//! Fuel-cell system models for fuel-aware dynamic power management.
//!
//! This crate implements every power-source component of the hybrid system
//! studied in *Zhuo et al., "Dynamic Power Management with Hybrid Power
//! Sources", DAC 2007* (Figure 1):
//!
//! * [`stack`] — the fuel-cell **stack** itself, modeled with a
//!   Larminie–Dicks polarization curve calibrated to the paper's BCS 20 W,
//!   20-cell stack (open-circuit voltage 18.2 V, ~20 W maximum power);
//! * [`dcdc`] — **DC-DC converters** (plain PWM and the paper's PWM-PFM
//!   design with high efficiency across the whole load range);
//! * [`controller`] — the **balance-of-plant controller** (air-blow fan,
//!   cooling fan, purge solenoid, microcontroller) in both the
//!   variable-speed-fan and on/off-fan configurations of Figure 3;
//! * [`system`] — the composed [`system::FcSystem`], which solves
//!   the stack operating point for a demanded output current and exposes
//!   the measured-equivalent system-efficiency curve;
//! * [`efficiency`] — the paper's **linear system-efficiency model**
//!   `η_s ≈ α − β·I_F` (Equation 2) together with the fuel-flow relation
//!   `I_fc = V_F·I_F / (ζ·η_s)` (Equations 3–4), plus a least-squares
//!   fitter that recovers `(α, β)` from a simulated or measured curve;
//! * [`fuel`] — fuel bookkeeping: Gibbs free-energy accounting through the
//!   measured proportionality `ΔE_Gibbs = ζ·I_fc`, hydrogen-flow
//!   conversion, fuel gauges and tanks for lifetime estimation.
//!
//! # Example: the paper's fuel-flow relation
//!
//! ```
//! use fcdpm_units::{Amps, Seconds};
//! use fcdpm_fuelcell::efficiency::LinearEfficiency;
//!
//! # fn main() -> Result<(), fcdpm_fuelcell::FuelCellError> {
//! let eff = LinearEfficiency::dac07(); // α = 0.45, β = 0.13, V_F = 12 V, ζ = 37.5
//! // Section 3.2: at I_F = 0.53 A the stack current is ≈ 0.448 A.
//! let i_fc = eff.stack_current(Amps::new(0.5333))?;
//! assert!((i_fc.amps() - 0.448).abs() < 1e-3);
//! // ... and the fuel for a 30 s slot is ≈ 13.45 A·s.
//! let fuel = eff.fuel_for(Amps::new(0.5333), Seconds::new(30.0))?;
//! assert!((fuel.amp_seconds() - 13.45).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod controller;
pub mod dcdc;
pub mod efficiency;
mod error;
pub mod fuel;
pub mod stack;
pub mod system;

pub use calibrate::StackFit;
pub use controller::{ControllerLoad, OnOffFanController, VariableSpeedFanController};
pub use dcdc::{DcDcConverter, IdealConverter, PwmConverter, PwmPfmConverter};
pub use efficiency::{EfficiencyFit, LinearEfficiency};
pub use error::FuelCellError;
pub use fuel::{FuelGauge, GibbsCoefficient, HydrogenTank};
pub use stack::{PolarizationCurve, StackPoint};
pub use system::{FcSystem, FcSystemBuilder, SystemPoint};
