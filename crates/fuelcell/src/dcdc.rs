//! DC-DC converter models.
//!
//! The FC stack's raw output voltage droops with load, so a DC-DC converter
//! regulates it to the 12 V bus. The paper's system uses a **PWM-PFM**
//! converter: pulse-width modulation at high output currents, switching to
//! pulse-frequency modulation at light load, which keeps the conversion
//! efficiency near 85 % across the whole load range. A plain **PWM**
//! converter (the configuration of the authors' earlier work) is efficient
//! only at high load — its fixed switching losses dominate at light load.

use fcdpm_units::{Amps, Efficiency, Volts};

/// A regulated step-down converter between the FC stack and the 12 V bus.
///
/// Implementations report their conversion efficiency as a function of the
/// *output* current, which is how converter datasheets specify it and what
/// the operating-point solver needs.
pub trait DcDcConverter: core::fmt::Debug {
    /// Regulated output voltage (the bus voltage, 12 V in the paper).
    fn output_voltage(&self) -> Volts;

    /// Conversion efficiency at output current `i_out`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `i_out` is negative.
    fn efficiency(&self, i_out: Amps) -> Efficiency;
}

/// The paper's PWM-PFM converter: "very high efficiency (~85 %) for the
/// entire load range" (Section 2.1), with a slight droop at high current
/// from conduction losses.
///
/// # Examples
///
/// ```
/// use fcdpm_units::Amps;
/// use fcdpm_fuelcell::{DcDcConverter, PwmPfmConverter};
///
/// let conv = PwmPfmConverter::dac07();
/// let eta = conv.efficiency(Amps::new(0.1));
/// assert!(eta.value() > 0.84); // efficient even at light load
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PwmPfmConverter {
    v_out: Volts,
    eta_peak: f64,
    droop_per_amp: f64,
}

impl PwmPfmConverter {
    /// Creates a converter with the given regulated output voltage, peak
    /// efficiency and linear high-current droop.
    ///
    /// # Panics
    ///
    /// Panics if `eta_peak` is not in `(0, 1]` or `droop_per_amp` is
    /// negative.
    #[must_use]
    #[track_caller]
    pub fn new(v_out: Volts, eta_peak: f64, droop_per_amp: f64) -> Self {
        assert!(
            eta_peak > 0.0 && eta_peak <= 1.0,
            "peak efficiency must be in (0, 1]"
        );
        assert!(droop_per_amp >= 0.0, "droop must be non-negative");
        Self {
            v_out,
            eta_peak,
            droop_per_amp,
        }
    }

    /// The paper's configuration: 12 V output, ~87 % peak with a mild
    /// droop, giving ≈ 85 % across the load-following range.
    #[must_use]
    pub fn dac07() -> Self {
        Self::new(Volts::new(12.0), 0.87, 0.02)
    }
}

impl DcDcConverter for PwmPfmConverter {
    fn output_voltage(&self) -> Volts {
        self.v_out
    }

    fn efficiency(&self, i_out: Amps) -> Efficiency {
        assert!(!i_out.is_negative(), "output current must be non-negative");
        Efficiency::saturating(self.eta_peak - self.droop_per_amp * i_out.amps())
    }
}

/// A plain PWM converter whose fixed switching losses make it inefficient
/// at light load: `η(I) = η_peak · I / (I + I_loss)`.
///
/// This is the converter configuration of the authors' earlier fixed-output
/// work and is used to regenerate Figure 3(c).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PwmConverter {
    v_out: Volts,
    eta_peak: f64,
    i_loss: Amps,
}

impl PwmConverter {
    /// Creates a PWM converter with peak efficiency `eta_peak` and a
    /// light-load loss knee at `i_loss`.
    ///
    /// # Panics
    ///
    /// Panics if `eta_peak` is not in `(0, 1]` or `i_loss` is negative.
    #[must_use]
    #[track_caller]
    pub fn new(v_out: Volts, eta_peak: f64, i_loss: Amps) -> Self {
        assert!(
            eta_peak > 0.0 && eta_peak <= 1.0,
            "peak efficiency must be in (0, 1]"
        );
        assert!(!i_loss.is_negative(), "loss knee must be non-negative");
        Self {
            v_out,
            eta_peak,
            i_loss,
        }
    }

    /// The configuration used for the Figure 3(c) comparison: 12 V output,
    /// 87 % asymptotic efficiency, 60 mA loss knee.
    #[must_use]
    pub fn dac07() -> Self {
        Self::new(Volts::new(12.0), 0.87, Amps::new(0.06))
    }
}

impl DcDcConverter for PwmConverter {
    fn output_voltage(&self) -> Volts {
        self.v_out
    }

    fn efficiency(&self, i_out: Amps) -> Efficiency {
        assert!(!i_out.is_negative(), "output current must be non-negative");
        let i = i_out.amps();
        if i == 0.0 {
            return Efficiency::ZERO;
        }
        Efficiency::saturating(self.eta_peak * i / (i + self.i_loss.amps()))
    }
}

/// A lossless converter, useful as a baseline in ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IdealConverter {
    v_out: Volts,
}

impl IdealConverter {
    /// Creates an ideal converter with the given output voltage.
    #[must_use]
    pub fn new(v_out: Volts) -> Self {
        Self { v_out }
    }
}

impl DcDcConverter for IdealConverter {
    fn output_voltage(&self) -> Volts {
        self.v_out
    }

    fn efficiency(&self, _i_out: Amps) -> Efficiency {
        Efficiency::UNITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pwm_pfm_flat_across_range() {
        let c = PwmPfmConverter::dac07();
        let lo = c.efficiency(Amps::new(0.1)).value();
        let hi = c.efficiency(Amps::new(1.2)).value();
        assert!(lo > 0.84 && lo < 0.88);
        assert!(hi > 0.83 && hi < 0.87);
        assert!((lo - hi).abs() < 0.03, "PWM-PFM should be near-flat");
        assert_eq!(c.output_voltage(), Volts::new(12.0));
    }

    #[test]
    fn pwm_poor_at_light_load() {
        let c = PwmConverter::dac07();
        let lo = c.efficiency(Amps::new(0.1)).value();
        let hi = c.efficiency(Amps::new(1.2)).value();
        assert!(lo < 0.60, "PWM should be lossy at light load, got {lo}");
        assert!(hi > 0.80, "PWM should be efficient at high load, got {hi}");
        assert_eq!(c.efficiency(Amps::ZERO), Efficiency::ZERO);
    }

    #[test]
    fn ideal_is_lossless() {
        let c = IdealConverter::new(Volts::new(12.0));
        assert_eq!(c.efficiency(Amps::new(0.5)), Efficiency::UNITY);
        assert_eq!(c.output_voltage().volts(), 12.0);
    }

    #[test]
    fn efficiency_saturates_not_negative() {
        // Extreme droop cannot push efficiency below zero.
        let c = PwmPfmConverter::new(Volts::new(12.0), 0.5, 1.0);
        assert_eq!(c.efficiency(Amps::new(10.0)), Efficiency::ZERO);
    }

    #[test]
    #[should_panic(expected = "peak efficiency")]
    fn invalid_peak_rejected() {
        let _ = PwmPfmConverter::new(Volts::new(12.0), 1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_current_rejected() {
        let _ = PwmPfmConverter::dac07().efficiency(Amps::new(-0.1));
    }

    #[test]
    fn trait_object_usable() {
        let boxed: Box<dyn DcDcConverter> = Box::new(PwmConverter::dac07());
        assert!(boxed.efficiency(Amps::new(1.0)).value() > 0.8);
    }
}
