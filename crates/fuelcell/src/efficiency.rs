//! The paper's linear system-efficiency model and its fitter.
//!
//! Over the load-following range the measured system efficiency is well
//! approximated by a straight line (Equation 2):
//!
//! ```text
//! η_s(I_F) ≈ α − β·I_F          (α = 0.45, β = 0.13 in the paper's setup)
//! ```
//!
//! Combining with `η_s = V_F·I_F / (ζ·I_fc)` (Equation 1) gives the
//! fuel-flow relation the whole optimization framework rests on
//! (Equations 3–4):
//!
//! ```text
//! I_fc(I_F) = V_F·I_F / (ζ·(α − β·I_F))     ( = 0.32·I_F/η_s in the paper)
//! ```
//!
//! `I_fc(I_F)` is strictly convex and increasing on the model's domain,
//! which is why averaging the FC output across a slot (Section 3.3) saves
//! fuel — Jensen's inequality in one line.

use fcdpm_units::{Amps, Charge, Efficiency, Seconds, Volts};

use crate::fuel::GibbsCoefficient;
use crate::FuelCellError;

/// The linear efficiency model `η_s(I_F) = α − β·I_F` with the bus voltage
/// and Gibbs coefficient needed to convert to stack current.
///
/// # Examples
///
/// ```
/// use fcdpm_units::Amps;
/// use fcdpm_fuelcell::LinearEfficiency;
///
/// # fn main() -> Result<(), fcdpm_fuelcell::FuelCellError> {
/// let eff = LinearEfficiency::dac07();
/// // Paper Section 3.2: I_F = 1.2 A → I_fc = 1.3 A.
/// let i_fc = eff.stack_current(Amps::new(1.2))?;
/// assert!((i_fc.amps() - 1.306).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearEfficiency {
    alpha: f64,
    beta: f64,
    v_bus: Volts,
    zeta: GibbsCoefficient,
}

/// Result of fitting a [`LinearEfficiency`] to sampled efficiency data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyFit {
    /// The fitted model.
    pub model: LinearEfficiency,
    /// Largest absolute residual `|η_sample − η_model|` over the samples.
    pub max_residual: f64,
    /// Root-mean-square residual over the samples.
    pub rmse: f64,
}

impl LinearEfficiency {
    /// Creates a model from its coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::InvalidParameter`] if `alpha` is not in
    /// `(0, 1]` or `beta` is negative or non-finite.
    pub fn new(
        alpha: f64,
        beta: f64,
        v_bus: Volts,
        zeta: GibbsCoefficient,
    ) -> Result<Self, FuelCellError> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
            return Err(FuelCellError::InvalidParameter { name: "alpha" });
        }
        if !beta.is_finite() || beta < 0.0 {
            return Err(FuelCellError::InvalidParameter { name: "beta" });
        }
        if v_bus.volts() <= 0.0 {
            return Err(FuelCellError::InvalidParameter { name: "v_bus" });
        }
        Ok(Self {
            alpha,
            beta,
            v_bus,
            zeta,
        })
    }

    /// The paper's measured model: α = 0.45, β = 0.13, V_F = 12 V,
    /// ζ = 37.5 — so `I_fc = 0.32·I_F/η_s` exactly as in Equation 4.
    /// Constructed directly — the literals trivially satisfy the
    /// [`new`](Self::new) invariants (α ∈ (0, 1], β ≥ 0, V_F > 0).
    #[must_use]
    pub fn dac07() -> Self {
        Self {
            alpha: 0.45,
            beta: 0.13,
            v_bus: Volts::new(12.0),
            zeta: GibbsCoefficient::dac07(),
        }
    }

    /// A constant-efficiency model (β = 0) at level `alpha` — the
    /// configuration of the authors' earlier work, and the ablation that
    /// collapses FC-DPM's advantage over ASAP-DPM to zero.
    ///
    /// # Errors
    ///
    /// Same as [`LinearEfficiency::new`].
    pub fn constant(
        alpha: f64,
        v_bus: Volts,
        zeta: GibbsCoefficient,
    ) -> Result<Self, FuelCellError> {
        Self::new(alpha, 0.0, v_bus, zeta)
    }

    /// Intercept α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Slope β (per ampere).
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Bus voltage `V_F`.
    #[must_use]
    pub fn bus_voltage(&self) -> Volts {
        self.v_bus
    }

    /// Gibbs coefficient ζ.
    #[must_use]
    pub fn zeta(&self) -> GibbsCoefficient {
        self.zeta
    }

    /// The lumped coefficient `V_F/ζ` (0.32 in the paper's Equation 4).
    #[must_use]
    pub fn coefficient(&self) -> f64 {
        self.v_bus.volts() / self.zeta.volts_equivalent()
    }

    /// The largest output current the model supports: `η_s` must stay
    /// strictly positive, so `I_F < α/β` (infinite for β = 0).
    #[must_use]
    pub fn domain_limit(&self) -> Amps {
        if self.beta == 0.0 {
            Amps::new(f64::INFINITY)
        } else {
            Amps::new(self.alpha / self.beta)
        }
    }

    /// Returns `true` if the model is defined (η_s > 0) at `i_f ≥ 0`.
    #[must_use]
    pub fn supports(&self, i_f: Amps) -> bool {
        !i_f.is_negative() && i_f < self.domain_limit()
    }

    /// System efficiency at output current `i_f` (Equation 2).
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::OutOfDomain`] if `i_f` is negative or at
    /// or beyond `α/β`.
    pub fn efficiency(&self, i_f: Amps) -> Result<Efficiency, FuelCellError> {
        if !self.supports(i_f) {
            return Err(FuelCellError::OutOfDomain { current: i_f });
        }
        Ok(Efficiency::saturating(self.alpha - self.beta * i_f.amps()))
    }

    /// Stack current at output current `i_f` (Equation 4):
    /// `I_fc = V_F·I_F / (ζ·(α − β·I_F))`.
    ///
    /// This is also the instantaneous fuel-consumption rate in ampere-
    /// seconds of stack charge per second.
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::OutOfDomain`] if `i_f` is outside the
    /// model's domain.
    pub fn stack_current(&self, i_f: Amps) -> Result<Amps, FuelCellError> {
        let eta = self.efficiency(i_f)?;
        Ok(Amps::new(self.coefficient() * i_f.amps() / eta.value()))
    }

    /// Fuel consumed when holding output current `i_f` for `duration`
    /// (the per-term summand of the paper's objective function, Eq. 5).
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::OutOfDomain`] if `i_f` is outside the
    /// model's domain or `duration` is negative.
    pub fn fuel_for(&self, i_f: Amps, duration: Seconds) -> Result<Charge, FuelCellError> {
        if duration.is_negative() {
            return Err(FuelCellError::OutOfDomain { current: i_f });
        }
        Ok(self.stack_current(i_f)? * duration)
    }

    /// First derivative of the stack current with respect to `i_f`:
    /// `dI_fc/dI_F = (V_F/ζ)·α/(α − β·I_F)²` — the marginal fuel rate,
    /// and the quantity the Lagrange conditions (Equations 8–9) equate
    /// across the idle and active periods.
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::OutOfDomain`] if `i_f` is outside the
    /// model's domain.
    pub fn marginal_fuel_rate(&self, i_f: Amps) -> Result<f64, FuelCellError> {
        let eta = self.efficiency(i_f)?;
        Ok(self.coefficient() * self.alpha / (eta.value() * eta.value()))
    }

    /// Fits `η ≈ α − β·I` to `(I, η)` samples by least squares.
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::InvalidParameter`] if fewer than two
    /// distinct currents are supplied or the fitted coefficients violate
    /// the model invariants (e.g. a positive slope fits best).
    pub fn fit(
        samples: &[(Amps, Efficiency)],
        v_bus: Volts,
        zeta: GibbsCoefficient,
    ) -> Result<EfficiencyFit, FuelCellError> {
        if samples.len() < 2 {
            return Err(FuelCellError::InvalidParameter { name: "samples" });
        }
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|(i, _)| i.amps()).sum();
        let sy: f64 = samples.iter().map(|(_, e)| e.value()).sum();
        let sxx: f64 = samples.iter().map(|(i, _)| i.amps() * i.amps()).sum();
        let sxy: f64 = samples.iter().map(|(i, e)| i.amps() * e.value()).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-15 {
            return Err(FuelCellError::InvalidParameter { name: "samples" });
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        let model = Self::new(intercept, -slope, v_bus, zeta)?;
        let mut max_residual = 0.0f64;
        let mut sq_sum = 0.0f64;
        for (i, e) in samples {
            let r = (e.value() - (intercept + slope * i.amps())).abs();
            max_residual = max_residual.max(r);
            sq_sum += r * r;
        }
        Ok(EfficiencyFit {
            model,
            max_residual,
            rmse: (sq_sum / n).sqrt(),
        })
    }
}

impl Default for LinearEfficiency {
    fn default() -> Self {
        Self::dac07()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dac07() -> LinearEfficiency {
        LinearEfficiency::dac07()
    }

    #[test]
    fn paper_constants() {
        let e = dac07();
        assert_eq!(e.alpha(), 0.45);
        assert_eq!(e.beta(), 0.13);
        assert!((e.coefficient() - 0.32).abs() < 1e-12);
    }

    #[test]
    fn motivational_example_currents() {
        // Section 3.2 Setting (b): I_F = 0.2 A → I_fc ≈ 0.15 A,
        // I_F = 1.2 A → I_fc ≈ 1.3 A.
        let e = dac07();
        assert!((e.stack_current(Amps::new(0.2)).unwrap().amps() - 0.1509).abs() < 1e-3);
        assert!((e.stack_current(Amps::new(1.2)).unwrap().amps() - 1.3061).abs() < 1e-3);
        // Setting (c): I_F = 0.53 A → I_fc ≈ 0.448 A.
        assert!((e.stack_current(Amps::new(0.5333)).unwrap().amps() - 0.448).abs() < 1e-3);
    }

    #[test]
    fn efficiency_values() {
        let e = dac07();
        assert!((e.efficiency(Amps::new(0.1)).unwrap().value() - 0.437).abs() < 1e-12);
        assert!((e.efficiency(Amps::new(1.2)).unwrap().value() - 0.294).abs() < 1e-12);
    }

    #[test]
    fn domain_checks() {
        let e = dac07();
        assert!((e.domain_limit().amps() - 0.45 / 0.13).abs() < 1e-12);
        assert!(e.supports(Amps::new(1.2)));
        assert!(!e.supports(Amps::new(3.5)));
        assert!(!e.supports(Amps::new(-0.1)));
        assert!(matches!(
            e.efficiency(Amps::new(4.0)),
            Err(FuelCellError::OutOfDomain { .. })
        ));
        assert!(matches!(
            e.stack_current(Amps::new(-0.1)),
            Err(FuelCellError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn constant_model_has_infinite_domain() {
        let e =
            LinearEfficiency::constant(0.35, Volts::new(12.0), GibbsCoefficient::dac07()).unwrap();
        assert!(e.domain_limit().amps().is_infinite());
        assert!(e.supports(Amps::new(100.0)));
        // With constant efficiency the fuel rate is linear in I_F.
        let a = e.stack_current(Amps::new(0.5)).unwrap().amps();
        let b = e.stack_current(Amps::new(1.0)).unwrap().amps();
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn stack_current_is_convex() {
        // Midpoint rule: I_fc((a+b)/2) < (I_fc(a)+I_fc(b))/2 for a ≠ b.
        let e = dac07();
        for (a, b) in [(0.1, 1.2), (0.2, 0.8), (0.5, 1.1)] {
            let mid = e.stack_current(Amps::new(0.5 * (a + b))).unwrap().amps();
            let avg = 0.5
                * (e.stack_current(Amps::new(a)).unwrap().amps()
                    + e.stack_current(Amps::new(b)).unwrap().amps());
            assert!(mid < avg, "convexity violated on ({a}, {b})");
        }
    }

    #[test]
    fn marginal_rate_is_increasing() {
        let e = dac07();
        let m1 = e.marginal_fuel_rate(Amps::new(0.2)).unwrap();
        let m2 = e.marginal_fuel_rate(Amps::new(1.0)).unwrap();
        assert!(m2 > m1);
        // Closed form at zero: (V_F/ζ)/α.
        let m0 = e.marginal_fuel_rate(Amps::ZERO).unwrap();
        assert!((m0 - 0.32 / 0.45).abs() < 1e-12);
    }

    #[test]
    fn fuel_for_scales_linearly_in_time() {
        let e = dac07();
        let f1 = e.fuel_for(Amps::new(0.5), Seconds::new(10.0)).unwrap();
        let f2 = e.fuel_for(Amps::new(0.5), Seconds::new(20.0)).unwrap();
        assert!((f2.amp_seconds() - 2.0 * f1.amp_seconds()).abs() < 1e-12);
        assert!(e.fuel_for(Amps::new(0.5), Seconds::new(-1.0)).is_err());
    }

    #[test]
    fn fit_recovers_exact_line() {
        let truth = dac07();
        let samples: Vec<(Amps, Efficiency)> = (0..12)
            .map(|k| {
                let i = Amps::new(0.1 + k as f64 * 0.1);
                (i, truth.efficiency(i).unwrap())
            })
            .collect();
        let fit =
            LinearEfficiency::fit(&samples, Volts::new(12.0), GibbsCoefficient::dac07()).unwrap();
        assert!((fit.model.alpha() - 0.45).abs() < 1e-9);
        assert!((fit.model.beta() - 0.13).abs() < 1e-9);
        assert!(fit.max_residual < 1e-9);
        assert!(fit.rmse < 1e-9);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        let one = [(Amps::new(0.5), Efficiency::new(0.4))];
        assert!(LinearEfficiency::fit(&one, Volts::new(12.0), GibbsCoefficient::dac07()).is_err());
        let same_x = [
            (Amps::new(0.5), Efficiency::new(0.4)),
            (Amps::new(0.5), Efficiency::new(0.41)),
        ];
        assert!(
            LinearEfficiency::fit(&same_x, Volts::new(12.0), GibbsCoefficient::dac07()).is_err()
        );
    }

    #[test]
    fn invalid_coefficients_rejected() {
        let zeta = GibbsCoefficient::dac07();
        assert!(LinearEfficiency::new(0.0, 0.13, Volts::new(12.0), zeta).is_err());
        assert!(LinearEfficiency::new(1.5, 0.13, Volts::new(12.0), zeta).is_err());
        assert!(LinearEfficiency::new(0.45, -0.1, Volts::new(12.0), zeta).is_err());
        assert!(LinearEfficiency::new(0.45, 0.13, Volts::new(0.0), zeta).is_err());
        assert!(LinearEfficiency::new(0.45, f64::NAN, Volts::new(12.0), zeta).is_err());
    }
}
