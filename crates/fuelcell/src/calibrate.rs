//! Calibration of the polarization model to measured I-V data.
//!
//! The paper's authors measured their BCS stack on the bench; a downstream
//! user has their own stack and their own bench data. This module fits the
//! Larminie–Dicks parameters to measured `(I, V)` samples by Nelder–Mead
//! search on the RMSE, searching the loss coefficients in log-space so the
//! positivity invariants hold by construction.

use fcdpm_units::{Amps, Volts};

use crate::stack::PolarizationCurve;
use crate::FuelCellError;

/// Result of fitting a [`PolarizationCurve`] to measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct StackFit {
    /// The fitted curve.
    pub curve: PolarizationCurve,
    /// Root-mean-square voltage residual over the samples (V).
    pub rmse: f64,
}

/// A minimal Nelder–Mead minimizer (sufficient for this 5-parameter,
/// smooth objective; no external dependency needed).
fn nelder_mead<F: Fn(&[f64]) -> f64>(f: F, start: &[f64], iterations: usize) -> Vec<f64> {
    let n = start.len();
    // Initial simplex: start plus per-coordinate steps.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((start.to_vec(), f(start)));
    for k in 0..n {
        let mut v = start.to_vec();
        v[k] += if v[k].abs() > 1e-6 {
            0.1 * v[k].abs()
        } else {
            0.1
        };
        let fv = f(&v);
        simplex.push((v, fv));
    }
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    for _ in 0..iterations {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let centroid: Vec<f64> = (0..n)
            .map(|k| simplex[..n].iter().map(|(v, _)| v[k]).sum::<f64>() / n as f64)
            .collect();
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = (0..n)
            .map(|k| centroid[k] + alpha * (centroid[k] - worst.0[k]))
            .collect();
        let fr = f(&reflect);
        if fr < simplex[0].1 {
            let expand: Vec<f64> = (0..n)
                .map(|k| centroid[k] + gamma * (reflect[k] - centroid[k]))
                .collect();
            let fe = f(&expand);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            let contract: Vec<f64> = (0..n)
                .map(|k| centroid[k] + rho * (worst.0[k] - centroid[k]))
                .collect();
            let fc = f(&contract);
            if fc < worst.1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink toward the best vertex.
                let best = simplex[0].0.clone();
                for vertex in simplex.iter_mut().skip(1) {
                    for (coord, anchor) in vertex.0.iter_mut().zip(&best) {
                        *coord = anchor + sigma * (*coord - anchor);
                    }
                    vertex.1 = f(&vertex.0);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    simplex[0].0.clone()
}

/// Builds a curve from the transformed parameter vector
/// `[e_oc, ln a, ln r, ln m, ln n]` (log-space keeps the losses positive).
fn curve_from(params: &[f64], i0: f64, cells: u32) -> Option<PolarizationCurve> {
    PolarizationCurve::new(
        params[0],
        params[1].exp(),
        i0,
        params[2].exp(),
        params[3].exp(),
        params[4].exp(),
        cells,
    )
    .ok()
}

impl PolarizationCurve {
    /// Fits the Larminie–Dicks parameters to measured `(I, V)` samples.
    ///
    /// The exchange-current scale `i0` is held at 10 mA (it is nearly
    /// degenerate with the Tafel slope on terminal data); the remaining
    /// five parameters are fitted. `cells` is carried through for the
    /// hydrogen-flow conversion.
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::InvalidParameter`] if fewer than six
    /// samples are supplied, any current is negative, or the fit collapses
    /// to invalid parameters.
    pub fn fit_iv(points: &[(Amps, Volts)], cells: u32) -> Result<StackFit, FuelCellError> {
        if points.len() < 6 {
            return Err(FuelCellError::InvalidParameter { name: "points" });
        }
        if points.iter().any(|(i, _)| i.is_negative()) {
            return Err(FuelCellError::InvalidParameter { name: "points" });
        }
        let i0 = 0.01;
        let rmse = |curve: &PolarizationCurve| -> f64 {
            let sq: f64 = points
                .iter()
                .map(|(i, v)| {
                    let p = curve.voltage(*i).volts();
                    (p - v.volts()).powi(2)
                })
                .sum();
            (sq / points.len() as f64).sqrt()
        };
        let objective = |params: &[f64]| -> f64 {
            match curve_from(params, i0, cells) {
                Some(curve) => rmse(&curve),
                None => f64::INFINITY,
            }
        };
        // Initial guess: open circuit from the lowest-current sample; the
        // BCS-class loss shape as the seed. The scan always overwrites
        // the seed voltage because `points` holds at least six samples
        // (checked above); `<=` keeps `min_by`'s last-wins tie-breaking.
        let mut v_oc_guess = 0.0;
        let mut i_min = f64::INFINITY;
        for (i, v) in points {
            if i.amps() <= i_min {
                i_min = i.amps();
                v_oc_guess = v.volts();
            }
        }
        let start = [
            v_oc_guess,
            (0.5f64).ln(),
            (1.0f64).ln(),
            (0.01f64).ln(),
            (3.0f64).ln(),
        ];
        let best = nelder_mead(objective, &start, 800);
        let curve =
            curve_from(&best, i0, cells).ok_or(FuelCellError::InvalidParameter { name: "fit" })?;
        let rmse_v = rmse(&curve);
        if !rmse_v.is_finite() {
            return Err(FuelCellError::InvalidParameter { name: "fit" });
        }
        Ok(StackFit {
            curve,
            rmse: rmse_v,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples_from(curve: &PolarizationCurve, noise: f64) -> Vec<(Amps, Volts)> {
        // Deterministic pseudo-noise (no RNG needed for a fit test).
        (0..20)
            .map(|k| {
                let i = Amps::new(0.05 + k as f64 * 0.07);
                let wiggle = noise * ((k as f64 * 2.39).sin());
                (i, Volts::new(curve.voltage(i).volts() + wiggle))
            })
            .collect()
    }

    #[test]
    fn recovers_clean_synthetic_curve() {
        let truth = PolarizationCurve::bcs_20w();
        let fit = PolarizationCurve::fit_iv(&samples_from(&truth, 0.0), 20).unwrap();
        assert!(fit.rmse < 0.02, "rmse {}", fit.rmse);
        // Predictions match across the range, including extrapolation a
        // bit past the samples.
        for i in [0.1, 0.5, 1.0, 1.3, 1.5] {
            let err = (fit.curve.voltage(Amps::new(i)).volts()
                - truth.voltage(Amps::new(i)).volts())
            .abs();
            assert!(err < 0.1, "fit off by {err} V at {i} A");
        }
    }

    #[test]
    fn tolerates_measurement_noise() {
        let truth = PolarizationCurve::bcs_20w();
        let fit = PolarizationCurve::fit_iv(&samples_from(&truth, 0.05), 20).unwrap();
        // RMSE bounded by roughly the noise amplitude.
        assert!(fit.rmse < 0.08, "rmse {}", fit.rmse);
        let err = (fit.curve.voltage(Amps::new(0.8)).volts()
            - truth.voltage(Amps::new(0.8)).volts())
        .abs();
        assert!(err < 0.15, "fit off by {err} V");
    }

    #[test]
    fn rejects_degenerate_input() {
        let too_few = vec![(Amps::new(0.1), Volts::new(17.0)); 3];
        assert!(PolarizationCurve::fit_iv(&too_few, 20).is_err());
        let negative = vec![(Amps::new(-0.1), Volts::new(17.0)); 8];
        assert!(PolarizationCurve::fit_iv(&negative, 20).is_err());
    }

    #[test]
    fn fitted_curve_keeps_invariants() {
        let truth = PolarizationCurve::bcs_20w();
        let fit = PolarizationCurve::fit_iv(&samples_from(&truth, 0.02), 20).unwrap();
        // Monotone decreasing voltage (the constructor guarantees the
        // parameter signs; check the behaviour too).
        let mut prev = fit.curve.voltage(Amps::ZERO);
        for k in 1..=30 {
            let v = fit.curve.voltage(Amps::new(k as f64 * 0.05));
            assert!(v <= prev);
            prev = v;
        }
        assert_eq!(fit.curve.cells(), 20);
    }
}
