//! The composed fuel-cell system (Figure 1).
//!
//! An [`FcSystem`] chains the stack, the DC-DC converter and the controller
//! load: when the system must deliver `I_F` at the bus, the converter must
//! output `I_dc = I_F + I_ctrl`, the stack must supply
//! `P_stack = V_dc·I_dc / η_dcdc`, and the stack operating point follows
//! from the polarization curve. The resulting system efficiency
//!
//! ```text
//! η_s(I_F) = V_F·I_F / (ζ·I_fc) = η_stack · η_dcdc · I_F/(I_F + I_ctrl)
//! ```
//!
//! is what the paper measures in Figure 3 and then approximates with the
//! linear model `α − β·I_F` used by the optimizer.

use fcdpm_units::{Amps, CurrentRange, Efficiency, Volts};

use crate::controller::{ControllerLoad, VariableSpeedFanController};
use crate::dcdc::{DcDcConverter, PwmPfmConverter};
use crate::efficiency::{EfficiencyFit, LinearEfficiency};
use crate::fuel::GibbsCoefficient;
use crate::stack::PolarizationCurve;
use crate::FuelCellError;

/// A fully resolved operating point of the composed system.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemPoint {
    /// Usable system output current `I_F` at the bus.
    pub i_f: Amps,
    /// DC-DC output current `I_dc = I_F + I_ctrl`.
    pub i_dc: Amps,
    /// Controller draw `I_ctrl`.
    pub i_ctrl: Amps,
    /// Stack current `I_fc`.
    pub i_fc: Amps,
    /// Stack terminal voltage `V_fc`.
    pub v_fc: Volts,
    /// System efficiency `η_s = V_F·I_F / (ζ·I_fc)`.
    pub efficiency: Efficiency,
}

/// The composed fuel-cell power system: stack + DC-DC + controller.
///
/// # Examples
///
/// ```
/// use fcdpm_units::Amps;
/// use fcdpm_fuelcell::FcSystem;
///
/// # fn main() -> Result<(), fcdpm_fuelcell::FuelCellError> {
/// let sys = FcSystem::dac07_variable_fan();
/// let pt = sys.operating_point(Amps::new(1.2))?;
/// // The paper reports I_fc ≈ 1.3 A at full output.
/// assert!((pt.i_fc.amps() - 1.3).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FcSystem {
    stack: PolarizationCurve,
    dcdc: Box<dyn DcDcConverter + Send + Sync>,
    controller: Box<dyn ControllerLoad + Send + Sync>,
    zeta: GibbsCoefficient,
    range: CurrentRange,
}

impl FcSystem {
    /// Starts building a system from its components.
    #[must_use]
    pub fn builder() -> FcSystemBuilder {
        FcSystemBuilder::new()
    }

    /// The paper's main configuration: BCS 20 W stack, PWM-PFM converter,
    /// variable-speed fan (the Figure 3(b) setup used in all experiments).
    #[must_use]
    pub fn dac07_variable_fan() -> Self {
        Self::builder().build()
    }

    /// The authors' earlier configuration: PWM converter and on/off fan
    /// (Figure 3(c)), kept for the efficiency comparison.
    #[must_use]
    pub fn dac07_on_off_fan() -> Self {
        Self::builder()
            .dcdc(crate::dcdc::PwmConverter::dac07())
            .controller(crate::controller::OnOffFanController::dac07())
            .build()
    }

    /// The stack model.
    #[must_use]
    pub fn stack(&self) -> &PolarizationCurve {
        &self.stack
    }

    /// The measured Gibbs coefficient ζ.
    #[must_use]
    pub fn zeta(&self) -> GibbsCoefficient {
        self.zeta
    }

    /// The regulated bus voltage `V_F`.
    #[must_use]
    pub fn bus_voltage(&self) -> Volts {
        self.dcdc.output_voltage()
    }

    /// The load-following range of output currents.
    #[must_use]
    pub fn load_following_range(&self) -> CurrentRange {
        self.range
    }

    /// Solves the full operating point for a demanded output current
    /// `i_f`.
    ///
    /// # Errors
    ///
    /// Returns [`FuelCellError::OutOfDomain`] for negative `i_f`,
    /// [`FuelCellError::ExceedsCapacity`] if the stack cannot supply the
    /// implied power, or [`FuelCellError::SolverDiverged`] if the bisection
    /// fails to converge.
    pub fn operating_point(&self, i_f: Amps) -> Result<SystemPoint, FuelCellError> {
        if i_f.is_negative() {
            return Err(FuelCellError::OutOfDomain { current: i_f });
        }
        let i_ctrl = self.controller.current(i_f);
        let i_dc = i_f + i_ctrl;
        let eta_dcdc = self.dcdc.efficiency(i_dc);
        if eta_dcdc.is_zero() {
            // Converter delivers nothing (e.g. PWM at zero output): the
            // stack supplies no power and no fuel flows.
            return Ok(SystemPoint {
                i_f,
                i_dc,
                i_ctrl,
                i_fc: Amps::ZERO,
                v_fc: self.stack.open_circuit_voltage(),
                efficiency: Efficiency::ZERO,
            });
        }
        let p_stack = (self.bus_voltage() * i_dc) / eta_dcdc.value();
        let i_fc = self.stack.current_for_power(p_stack)?;
        let v_fc = self.stack.voltage(i_fc);
        let efficiency = if i_fc.is_zero() {
            Efficiency::ZERO
        } else {
            Efficiency::saturating(
                (self.bus_voltage() * i_f).watts() / (self.zeta.volts_equivalent() * i_fc.amps()),
            )
        };
        Ok(SystemPoint {
            i_f,
            i_dc,
            i_ctrl,
            i_fc,
            v_fc,
            efficiency,
        })
    }

    /// System efficiency `η_s` at output current `i_f`.
    ///
    /// # Errors
    ///
    /// Same as [`operating_point`](Self::operating_point).
    pub fn system_efficiency(&self, i_f: Amps) -> Result<Efficiency, FuelCellError> {
        Ok(self.operating_point(i_f)?.efficiency)
    }

    /// Samples the system-efficiency curve over the load-following range —
    /// the data behind Figure 3(b)/(c).
    ///
    /// # Errors
    ///
    /// Same as [`operating_point`](Self::operating_point).
    pub fn efficiency_curve(&self, count: usize) -> Result<Vec<SystemPoint>, FuelCellError> {
        self.range
            .sweep(count)
            .into_iter()
            .map(|i| self.operating_point(i))
            .collect()
    }

    /// Fits the paper's linear model `η_s ≈ α − β·I_F` to this system's
    /// efficiency curve over its load-following range (least squares on
    /// `count` samples).
    ///
    /// # Errors
    ///
    /// Same as [`operating_point`](Self::operating_point).
    pub fn fit_linear_efficiency(&self, count: usize) -> Result<EfficiencyFit, FuelCellError> {
        let pts = self.efficiency_curve(count)?;
        let samples: Vec<(Amps, Efficiency)> = pts.iter().map(|p| (p.i_f, p.efficiency)).collect();
        LinearEfficiency::fit(&samples, self.bus_voltage(), self.zeta)
    }
}

/// Builder for [`FcSystem`] (the components have several flavors each, so
/// a builder keeps construction legible).
pub struct FcSystemBuilder {
    stack: PolarizationCurve,
    dcdc: Box<dyn DcDcConverter + Send + Sync>,
    controller: Box<dyn ControllerLoad + Send + Sync>,
    zeta: GibbsCoefficient,
    range: CurrentRange,
}

// The converter and controller are trait objects without a `Debug`
// bound, so the derive is unavailable.
impl core::fmt::Debug for FcSystemBuilder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FcSystemBuilder")
            .field("stack", &self.stack)
            .field("zeta", &self.zeta)
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

impl FcSystemBuilder {
    /// Starts from the paper's main configuration.
    #[must_use]
    pub fn new() -> Self {
        Self {
            stack: PolarizationCurve::bcs_20w(),
            dcdc: Box::new(PwmPfmConverter::dac07()),
            controller: Box::new(VariableSpeedFanController::dac07()),
            zeta: GibbsCoefficient::dac07(),
            range: CurrentRange::dac07(),
        }
    }

    /// Replaces the stack model.
    #[must_use]
    pub fn stack(mut self, stack: PolarizationCurve) -> Self {
        self.stack = stack;
        self
    }

    /// Replaces the DC-DC converter.
    #[must_use]
    pub fn dcdc<C: DcDcConverter + Send + Sync + 'static>(mut self, dcdc: C) -> Self {
        self.dcdc = Box::new(dcdc);
        self
    }

    /// Replaces the controller load model.
    #[must_use]
    pub fn controller<C: ControllerLoad + Send + Sync + 'static>(mut self, ctrl: C) -> Self {
        self.controller = Box::new(ctrl);
        self
    }

    /// Replaces the Gibbs coefficient.
    #[must_use]
    pub fn zeta(mut self, zeta: GibbsCoefficient) -> Self {
        self.zeta = zeta;
        self
    }

    /// Replaces the load-following range.
    #[must_use]
    pub fn load_following_range(mut self, range: CurrentRange) -> Self {
        self.range = range;
        self
    }

    /// Finishes construction.
    #[must_use]
    pub fn build(self) -> FcSystem {
        FcSystem {
            stack: self.stack,
            dcdc: self.dcdc,
            controller: self.controller,
            zeta: self.zeta,
            range: self.range,
        }
    }
}

impl Default for FcSystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operating_point_balances_power() {
        let sys = FcSystem::dac07_variable_fan();
        let pt = sys.operating_point(Amps::new(0.8)).unwrap();
        // Stack power × converter efficiency = DC-DC output power.
        let p_stack = (pt.v_fc * pt.i_fc).watts();
        let eta = PwmPfmConverter::dac07().efficiency(pt.i_dc).value();
        let p_out = (sys.bus_voltage() * pt.i_dc).watts();
        assert!((p_stack * eta - p_out).abs() < 1e-5);
    }

    #[test]
    fn full_output_stack_current_near_paper() {
        let sys = FcSystem::dac07_variable_fan();
        let pt = sys.operating_point(Amps::new(1.2)).unwrap();
        assert!(
            (1.2..1.45).contains(&pt.i_fc.amps()),
            "I_fc at full output = {} A (paper: ≈1.3 A)",
            pt.i_fc.amps()
        );
    }

    #[test]
    fn efficiency_decreases_with_output_for_variable_fan() {
        let sys = FcSystem::dac07_variable_fan();
        let lo = sys.system_efficiency(Amps::new(0.1)).unwrap();
        let hi = sys.system_efficiency(Amps::new(1.2)).unwrap();
        assert!(lo > hi, "Figure 3(b) shape: η falls with I_F");
        // Sanity band: both around 25–40 %.
        assert!((0.25..0.45).contains(&lo.value()));
        assert!((0.2..0.35).contains(&hi.value()));
    }

    #[test]
    fn on_off_fan_flat_in_mid_range() {
        // Figure 3(c): "efficiency can be treated as a constant in the
        // load following range 0.3–1.2 A (variation within ±3 %)".
        let sys = FcSystem::dac07_on_off_fan();
        let etas: Vec<f64> = [0.3, 0.5, 0.7, 0.9, 1.1, 1.2]
            .iter()
            .map(|&i| sys.system_efficiency(Amps::new(i)).unwrap().value())
            .collect();
        let mean = etas.iter().sum::<f64>() / etas.len() as f64;
        for eta in &etas {
            assert!(
                (eta - mean).abs() < 0.04,
                "on/off-fan efficiency not flat: {etas:?}"
            );
        }
    }

    #[test]
    fn variable_fan_beats_on_off_fan() {
        // Figure 3: curve (b) sits above curve (c).
        let var = FcSystem::dac07_variable_fan();
        let onoff = FcSystem::dac07_on_off_fan();
        for i in [0.1, 0.3, 0.6, 0.9, 1.2] {
            let a = var.system_efficiency(Amps::new(i)).unwrap();
            let b = onoff.system_efficiency(Amps::new(i)).unwrap();
            assert!(a >= b, "variable fan should win at {i} A");
        }
    }

    #[test]
    fn negative_current_rejected() {
        let sys = FcSystem::dac07_variable_fan();
        assert!(matches!(
            sys.operating_point(Amps::new(-0.1)),
            Err(FuelCellError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn excessive_demand_rejected() {
        let sys = FcSystem::dac07_variable_fan();
        assert!(matches!(
            sys.operating_point(Amps::new(10.0)),
            Err(FuelCellError::ExceedsCapacity { .. })
        ));
    }

    #[test]
    fn efficiency_curve_has_requested_len() {
        let sys = FcSystem::dac07_variable_fan();
        let curve = sys.efficiency_curve(12).unwrap();
        assert_eq!(curve.len(), 12);
        assert_eq!(curve[0].i_f, Amps::new(0.1));
        assert_eq!(curve[11].i_f, Amps::new(1.2));
    }

    #[test]
    fn linear_fit_has_negative_slope() {
        let sys = FcSystem::dac07_variable_fan();
        let fit = sys.fit_linear_efficiency(23).unwrap();
        assert!(fit.model.alpha() > 0.25, "α̂ = {}", fit.model.alpha());
        assert!(fit.model.beta() > 0.0, "β̂ = {}", fit.model.beta());
        assert!(fit.max_residual < 0.02, "fit residual {}", fit.max_residual);
    }

    #[test]
    fn builder_customization() {
        let sys = FcSystem::builder()
            .zeta(GibbsCoefficient::new(40.0, 20).unwrap())
            .load_following_range(CurrentRange::new(Amps::new(0.2), Amps::new(1.0)))
            .build();
        assert_eq!(sys.zeta().volts_equivalent(), 40.0);
        assert_eq!(sys.load_following_range().min(), Amps::new(0.2));
    }
}
