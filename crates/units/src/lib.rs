//! Typed physical quantities for the `fcdpm` workspace.
//!
//! Power-source modeling mixes many `f64` quantities — currents on the 12 V
//! bus, currents on the fuel-cell stack side, charges, energies, durations —
//! and confusing them is the classic source of silent modeling bugs. This
//! crate provides zero-cost newtypes ([`Amps`], [`Volts`], [`Watts`],
//! [`Seconds`], [`Charge`], [`Energy`], [`Efficiency`]) with only the
//! physically meaningful arithmetic implemented between them.
//!
//! # Examples
//!
//! ```
//! use fcdpm_units::{Amps, Volts, Seconds};
//!
//! let bus = Volts::new(12.0);
//! let load = Amps::new(1.2);
//! let power = bus * load;                   // Watts
//! let energy = power * Seconds::new(10.0);  // Energy (J)
//! assert_eq!(energy.joules(), 144.0);
//!
//! let charge = load * Seconds::new(10.0);   // Charge (A·s)
//! assert_eq!(charge.amp_seconds(), 12.0);
//! ```
//!
//! Cross-dimension products and quotients follow SI relations:
//!
//! * [`Volts`] × [`Amps`] → [`Watts`] (and [`Watts`] ÷ [`Volts`] → [`Amps`])
//! * [`Watts`] × [`Seconds`] → [`Energy`]
//! * [`Amps`] × [`Seconds`] → [`Charge`] (and [`Charge`] ÷ [`Seconds`] → [`Amps`])
//! * [`Energy`] ÷ [`Charge`] → [`Volts`]
//!
//! The [`CurrentRange`] type models a fuel cell's *load-following range*
//! (the interval of output currents the stack can track).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod charge;
mod efficiency;
mod electrical;
mod energy;
mod range;
mod time;

pub use charge::Charge;
pub use efficiency::{Efficiency, EfficiencyError};
pub use electrical::{Amps, Volts, Watts};
pub use energy::Energy;
pub use range::CurrentRange;
pub use time::Seconds;
