//! Durations.

quantity! {
    /// A duration in seconds.
    ///
    /// All task-slot lengths, transition overheads and simulation steps in
    /// the workspace are expressed as `Seconds`.
    ///
    /// # Examples
    ///
    /// ```
    /// use fcdpm_units::Seconds;
    ///
    /// let slot = Seconds::from_minutes(28.0);
    /// assert_eq!(slot.seconds(), 1680.0);
    /// assert_eq!(format!("{:.1}", Seconds::new(3.03)), "3.0 s");
    /// ```
    Seconds, "s", seconds
}

impl Seconds {
    /// Creates a duration from minutes.
    ///
    /// # Panics
    ///
    /// Panics if `minutes` is NaN.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }

    /// Creates a duration from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is NaN.
    #[must_use]
    pub fn from_millis(millis: f64) -> Self {
        Self::new(millis / 1000.0)
    }

    /// Returns the duration in whole minutes (fractional).
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.seconds() / 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Seconds::from_minutes(2.0).seconds(), 120.0);
        assert_eq!(Seconds::from_millis(500.0).seconds(), 0.5);
        assert_eq!(Seconds::new(90.0).minutes(), 1.5);
        assert_eq!(Seconds::ZERO.seconds(), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = Seconds::new(3.0);
        let b = Seconds::new(1.5);
        assert_eq!((a + b).seconds(), 4.5);
        assert_eq!((a - b).seconds(), 1.5);
        assert_eq!((a * 2.0).seconds(), 6.0);
        assert_eq!((a / 2.0).seconds(), 1.5);
        assert_eq!(a / b, 2.0);
        assert_eq!((-a).seconds(), -3.0);
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut t = Seconds::new(1.0);
        t += Seconds::new(2.0);
        t -= Seconds::new(0.5);
        assert_eq!(t.seconds(), 2.5);
        let total: Seconds = [Seconds::new(1.0), Seconds::new(2.0)].iter().sum();
        assert_eq!(total.seconds(), 3.0);
    }

    #[test]
    fn ordering_helpers() {
        let a = Seconds::new(2.0);
        let b = Seconds::new(5.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Seconds::new(7.0).clamp(a, b), b);
        assert_eq!(Seconds::new(-1.0).max_zero(), Seconds::ZERO);
        assert_eq!(Seconds::new(-1.0).abs().seconds(), 1.0);
    }

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(Seconds::new(1.0).approx_eq(Seconds::new(1.0 + 1e-12), 1e-9));
        assert!(!Seconds::new(1.0).approx_eq(Seconds::new(1.1), 1e-9));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        let _ = Seconds::new(f64::NAN);
    }

    #[test]
    fn display_formats_unit() {
        assert_eq!(Seconds::new(3.5).to_string(), "3.5 s");
        assert_eq!(format!("{:.2}", Seconds::new(1.0 / 3.0)), "0.33 s");
    }

    #[test]
    fn serde_round_trip() {
        let t = Seconds::new(12.25);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "12.25");
        let back: Seconds = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
