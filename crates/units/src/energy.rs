//! Energy.

use crate::{Charge, Seconds, Volts, Watts};

quantity! {
    /// An energy in joules.
    ///
    /// Used for delivered bus energy (`V_F · ∫ I_F dt`) and for Gibbs
    /// free-energy fuel accounting (`ΔE_Gibbs = ζ · ∫ I_fc dt`).
    ///
    /// # Examples
    ///
    /// ```
    /// use fcdpm_units::{Energy, Seconds};
    ///
    /// let e = Energy::new(192.0);
    /// assert_eq!((e / Seconds::new(30.0)).watts(), 6.4);
    /// ```
    Energy, "J", joules
}

impl Energy {
    /// Creates an energy from watt-hours.
    ///
    /// # Panics
    ///
    /// Panics if `wh` is NaN.
    #[must_use]
    pub fn from_watt_hours(wh: f64) -> Self {
        Self::new(wh * 3600.0)
    }

    /// Returns the energy in watt-hours.
    #[must_use]
    pub fn watt_hours(self) -> f64 {
        self.joules() / 3600.0
    }

    /// Creates an energy from kilojoules.
    ///
    /// # Panics
    ///
    /// Panics if `kj` is NaN.
    #[must_use]
    pub fn from_kilojoules(kj: f64) -> Self {
        Self::new(kj * 1000.0)
    }
}

/// `E / t = P`
impl core::ops::Div<Seconds> for Energy {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.joules() / rhs.seconds())
    }
}

/// `E / P = t`
impl core::ops::Div<Watts> for Energy {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.joules() / rhs.watts())
    }
}

/// `E / Q = V`
impl core::ops::Div<Charge> for Energy {
    type Output = Volts;
    fn div(self, rhs: Charge) -> Volts {
        Volts::new(self.joules() / rhs.amp_seconds())
    }
}

/// `E / V = Q`
impl core::ops::Div<Volts> for Energy {
    type Output = Charge;
    fn div(self, rhs: Volts) -> Charge {
        Charge::new(self.joules() / rhs.volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(Energy::from_watt_hours(1.0).joules(), 3600.0);
        assert_eq!(Energy::new(7200.0).watt_hours(), 2.0);
        assert_eq!(Energy::from_kilojoules(2.5).joules(), 2500.0);
    }

    #[test]
    fn quotients() {
        let e = Energy::new(192.0);
        assert_eq!((e / Seconds::new(30.0)).watts(), 6.4);
        assert_eq!((e / Watts::new(6.4)).seconds(), 30.0);
        assert_eq!((e / Charge::new(16.0)).volts(), 12.0);
        assert_eq!((e / Volts::new(12.0)).amp_seconds(), 16.0);
    }

    #[test]
    fn display() {
        assert_eq!(Energy::new(192.0).to_string(), "192 J");
    }
}
