//! Current intervals (load-following range).

use core::fmt;

use crate::Amps;

/// A closed interval of currents `[min, max]`.
///
/// Models a fuel-cell system's *load-following range*: the interval of
/// output currents the stack can deliver while tracking the load. The paper's
/// BCS 20 W system follows loads in `[0.1 A, 1.2 A]`; demands outside the
/// interval must be buffered by the charge-storage element (above) or bled
/// off (below).
///
/// # Examples
///
/// ```
/// use fcdpm_units::{Amps, CurrentRange};
///
/// let range = CurrentRange::new(Amps::new(0.1), Amps::new(1.2));
/// assert!(range.contains(Amps::new(0.53)));
/// assert_eq!(range.clamp(Amps::new(1.5)), Amps::new(1.2));
/// assert_eq!(range.clamp(Amps::new(0.02)), Amps::new(0.1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CurrentRange {
    min: Amps,
    max: Amps,
}

impl CurrentRange {
    /// Creates a range from its bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either bound is negative.
    #[must_use]
    #[track_caller]
    pub fn new(min: Amps, max: Amps) -> Self {
        assert!(min <= max, "current range bounds inverted: {min} > {max}");
        assert!(!min.is_negative(), "current range lower bound negative");
        Self { min, max }
    }

    /// The load-following range of the paper's BCS 20 W fuel-cell system:
    /// `[0.1 A, 1.2 A]`.
    #[must_use]
    pub fn dac07() -> Self {
        Self::new(Amps::new(0.1), Amps::new(1.2))
    }

    /// Lower bound.
    #[must_use]
    pub fn min(&self) -> Amps {
        self.min
    }

    /// Upper bound.
    #[must_use]
    pub fn max(&self) -> Amps {
        self.max
    }

    /// Width of the interval.
    #[must_use]
    pub fn width(&self) -> Amps {
        self.max - self.min
    }

    /// Returns `true` if `i` lies inside the closed interval.
    #[must_use]
    pub fn contains(&self, i: Amps) -> bool {
        self.min <= i && i <= self.max
    }

    /// Clamps `i` to the closest boundary value (the paper's rule for
    /// out-of-range optimizer solutions, Section 3.3.1).
    #[must_use]
    pub fn clamp(&self, i: Amps) -> Amps {
        i.clamp(self.min, self.max)
    }

    /// Linearly interpolates across the range: `t = 0` gives `min`,
    /// `t = 1` gives `max`. `t` outside `[0, 1]` extrapolates.
    #[must_use]
    pub fn lerp(&self, t: f64) -> Amps {
        self.min + (self.max - self.min) * t
    }

    /// Returns `count` evenly spaced currents spanning the range
    /// (inclusive of both endpoints). Used by efficiency-curve sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2`.
    #[must_use]
    #[track_caller]
    pub fn sweep(&self, count: usize) -> Vec<Amps> {
        assert!(count >= 2, "sweep needs at least the two endpoints");
        (0..count)
            .map(|k| self.lerp(k as f64 / (count - 1) as f64))
            .collect()
    }
}

impl fmt::Display for CurrentRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_and_contains() {
        let r = CurrentRange::dac07();
        assert_eq!(r.min(), Amps::new(0.1));
        assert_eq!(r.max(), Amps::new(1.2));
        assert!(r.contains(Amps::new(0.1)));
        assert!(r.contains(Amps::new(1.2)));
        assert!(!r.contains(Amps::new(1.21)));
        assert!(!r.contains(Amps::new(0.05)));
        assert!((r.width().amps() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn clamp_to_closest_boundary() {
        let r = CurrentRange::dac07();
        assert_eq!(r.clamp(Amps::new(2.0)), Amps::new(1.2));
        assert_eq!(r.clamp(Amps::new(0.0)), Amps::new(0.1));
        assert_eq!(r.clamp(Amps::new(0.53)), Amps::new(0.53));
    }

    #[test]
    fn lerp_and_sweep() {
        let r = CurrentRange::new(Amps::new(0.0), Amps::new(1.0));
        assert_eq!(r.lerp(0.5), Amps::new(0.5));
        let pts = r.sweep(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], Amps::new(0.0));
        assert_eq!(pts[4], Amps::new(1.0));
        assert_eq!(pts[2], Amps::new(0.5));
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_bounds_rejected() {
        let _ = CurrentRange::new(Amps::new(1.0), Amps::new(0.5));
    }

    #[test]
    #[should_panic(expected = "at least the two endpoints")]
    fn sweep_needs_two_points() {
        let _ = CurrentRange::dac07().sweep(1);
    }

    #[test]
    fn display() {
        assert_eq!(CurrentRange::dac07().to_string(), "[0.1 A, 1.2 A]");
    }

    #[test]
    fn serde_round_trip() {
        let r = CurrentRange::dac07();
        let json = serde_json::to_string(&r).unwrap();
        let back: CurrentRange = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
