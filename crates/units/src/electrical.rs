//! Electrical quantities: current, voltage and power.

use crate::{Charge, Energy, Seconds};

quantity! {
    /// An electric current in amperes.
    ///
    /// Currents appear on two sides of a fuel-cell system: the regulated
    /// 12 V bus (`I_F`, `I_ld`, …) and the stack side (`I_fc`). Both use
    /// `Amps`; which side a value belongs to is carried by field and
    /// parameter names, mirroring the paper's notation.
    ///
    /// # Examples
    ///
    /// ```
    /// use fcdpm_units::{Amps, Seconds};
    ///
    /// let i = Amps::from_milli(530.0);
    /// let q = i * Seconds::new(30.0);
    /// assert!((q.amp_seconds() - 15.9).abs() < 1e-12);
    /// ```
    Amps, "A", amps
}

quantity! {
    /// An electric potential in volts.
    ///
    /// # Examples
    ///
    /// ```
    /// use fcdpm_units::{Amps, Volts};
    ///
    /// let p = Volts::new(12.0) * Amps::new(0.5);
    /// assert_eq!(p.watts(), 6.0);
    /// ```
    Volts, "V", volts
}

quantity! {
    /// A power in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use fcdpm_units::{Volts, Watts};
    ///
    /// // The DVD camcorder RUN mode draws 14.65 W from the 12 V bus.
    /// let i = Watts::new(14.65) / Volts::new(12.0);
    /// assert!((i.amps() - 1.2208).abs() < 1e-3);
    /// ```
    Watts, "W", watts
}

impl Amps {
    /// Creates a current from milliamperes.
    ///
    /// # Panics
    ///
    /// Panics if `milli` is NaN.
    #[must_use]
    pub fn from_milli(milli: f64) -> Self {
        Self::new(milli / 1000.0)
    }

    /// Returns the current in milliamperes.
    #[must_use]
    pub fn milliamps(self) -> f64 {
        self.amps() * 1000.0
    }

    /// Returns the power this current delivers at potential `v`.
    #[must_use]
    pub fn at_volts(self, v: Volts) -> Watts {
        v * self
    }
}

impl Watts {
    /// Returns the current corresponding to this power at potential `v`.
    ///
    /// Convenience alias for `self / v`.
    #[must_use]
    pub fn current_at(self, v: Volts) -> Amps {
        self / v
    }
}

/// `V × I = P`
impl core::ops::Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.volts() * rhs.amps())
    }
}

/// `I × V = P`
impl core::ops::Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

/// `P / V = I`
impl core::ops::Div<Volts> for Watts {
    type Output = Amps;
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.watts() / rhs.volts())
    }
}

/// `P / I = V`
impl core::ops::Div<Amps> for Watts {
    type Output = Volts;
    fn div(self, rhs: Amps) -> Volts {
        Volts::new(self.watts() / rhs.amps())
    }
}

/// `I × t = Q`
impl core::ops::Mul<Seconds> for Amps {
    type Output = Charge;
    fn mul(self, rhs: Seconds) -> Charge {
        Charge::new(self.amps() * rhs.seconds())
    }
}

/// `t × I = Q`
impl core::ops::Mul<Amps> for Seconds {
    type Output = Charge;
    fn mul(self, rhs: Amps) -> Charge {
        rhs * self
    }
}

/// `P × t = E`
impl core::ops::Mul<Seconds> for Watts {
    type Output = Energy;
    fn mul(self, rhs: Seconds) -> Energy {
        Energy::new(self.watts() * rhs.seconds())
    }
}

/// `t × P = E`
impl core::ops::Mul<Watts> for Seconds {
    type Output = Energy;
    fn mul(self, rhs: Watts) -> Energy {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milliamp_conversions() {
        assert_eq!(Amps::from_milli(200.0).amps(), 0.2);
        assert_eq!(Amps::new(1.2).milliamps(), 1200.0);
    }

    #[test]
    fn power_relations() {
        let v = Volts::new(12.0);
        let i = Amps::new(1.2);
        let p = v * i;
        assert!((p.watts() - 14.4).abs() < 1e-12);
        assert!(((i * v).watts() - 14.4).abs() < 1e-12);
        assert!(((p / v).amps() - 1.2).abs() < 1e-12);
        assert!(((p / i).volts() - 12.0).abs() < 1e-12);
        assert!((i.at_volts(v).watts() - 14.4).abs() < 1e-12);
        assert!((p.current_at(v).amps() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn charge_and_energy_integration() {
        let t = Seconds::new(20.0);
        assert_eq!((Amps::new(0.2) * t).amp_seconds(), 4.0);
        assert_eq!((t * Amps::new(0.2)).amp_seconds(), 4.0);
        assert_eq!((Watts::new(14.65) * t).joules(), 293.0);
        assert_eq!((t * Watts::new(14.65)).joules(), 293.0);
    }

    #[test]
    fn camcorder_run_current() {
        // Figure 6: RUN mode is 14.65 W at the 12 V bus.
        let i = Watts::new(14.65) / Volts::new(12.0);
        assert!((i.amps() - 1.220833).abs() < 1e-6);
    }

    #[test]
    fn display() {
        assert_eq!(Amps::new(0.53).to_string(), "0.53 A");
        assert_eq!(Volts::new(18.2).to_string(), "18.2 V");
        assert_eq!(format!("{:.1}", Watts::new(14.65)), "14.7 W");
    }

    #[test]
    fn ratio_is_dimensionless() {
        assert_eq!(Amps::new(1.2) / Amps::new(0.6), 2.0);
    }
}
