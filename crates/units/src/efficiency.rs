//! Dimensionless efficiency.

use core::fmt;

/// Error returned when constructing an [`Efficiency`] from an invalid value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EfficiencyError {
    /// The value was NaN.
    NotANumber,
    /// The value was negative.
    Negative,
    /// The value exceeded 1 (100 %).
    AboveUnity,
}

impl fmt::Display for EfficiencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotANumber => write!(f, "efficiency was NaN"),
            Self::Negative => write!(f, "efficiency was negative"),
            Self::AboveUnity => write!(f, "efficiency exceeded 1.0"),
        }
    }
}

impl std::error::Error for EfficiencyError {}

/// A dimensionless conversion efficiency in `[0, 1]`.
///
/// Fuel-cell system efficiency, DC-DC converter efficiency and storage
/// round-trip efficiency are all `Efficiency` values. The type guarantees
/// the invariant `0 ≤ η ≤ 1`; arithmetic that could leave the interval goes
/// through [`Efficiency::try_new`].
///
/// # Examples
///
/// ```
/// use fcdpm_units::Efficiency;
///
/// # fn main() -> Result<(), fcdpm_units::EfficiencyError> {
/// let stack = Efficiency::try_new(0.45)?;
/// let dcdc = Efficiency::try_new(0.85)?;
/// let total = stack * dcdc;
/// assert!((total.value() - 0.3825).abs() < 1e-12);
/// assert_eq!(format!("{:.1}", total), "38.2 %");
/// # Ok(())
/// # }
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Efficiency(f64);

impl Efficiency {
    /// Zero efficiency (all input lost).
    pub const ZERO: Self = Self(0.0);
    /// Perfect (lossless) conversion.
    pub const UNITY: Self = Self(1.0);

    /// Creates an efficiency, validating `0 ≤ value ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns an [`EfficiencyError`] if `value` is NaN, negative, or
    /// greater than 1.
    pub fn try_new(value: f64) -> Result<Self, EfficiencyError> {
        if value.is_nan() {
            Err(EfficiencyError::NotANumber)
        } else if value < 0.0 {
            Err(EfficiencyError::Negative)
        } else if value > 1.0 {
            Err(EfficiencyError::AboveUnity)
        } else {
            Ok(Self(value))
        }
    }

    /// Creates an efficiency, panicking on invalid input.
    ///
    /// Convenient for literals; prefer [`Efficiency::try_new`] for computed
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[0, 1]` or NaN.
    #[must_use]
    #[track_caller]
    pub fn new(value: f64) -> Self {
        match Self::try_new(value) {
            Ok(v) => v,
            // Documented contract of this literal-convenience
            // constructor; computed values go through `try_new`.
            Err(e) => panic!("invalid efficiency {value}: {e}"), // fcdpm-lint: allow(panic-policy)
        }
    }

    /// Creates an efficiency from a value that may fall slightly outside
    /// `[0, 1]` by clamping it into the interval.
    ///
    /// Useful when an efficiency comes out of a numerical solver with
    /// floating-point noise at the boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[must_use]
    #[track_caller]
    pub fn saturating(value: f64) -> Self {
        assert!(!value.is_nan(), "efficiency must not be NaN");
        Self(value.clamp(0.0, 1.0))
    }

    /// Returns the raw value in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the value as a percentage in `[0, 100]`.
    #[must_use]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns `true` if the efficiency is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

/// Chaining two conversion stages multiplies their efficiencies; the result
/// stays in `[0, 1]` by construction.
impl core::ops::Mul for Efficiency {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self(self.0 * rhs.0)
    }
}

impl fmt::Display for Efficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} %", prec, self.percent())
        } else {
            write!(f, "{} %", self.percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Efficiency::try_new(0.0).is_ok());
        assert!(Efficiency::try_new(1.0).is_ok());
        assert_eq!(
            Efficiency::try_new(f64::NAN),
            Err(EfficiencyError::NotANumber)
        );
        assert_eq!(Efficiency::try_new(-0.1), Err(EfficiencyError::Negative));
        assert_eq!(Efficiency::try_new(1.1), Err(EfficiencyError::AboveUnity));
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Efficiency::saturating(1.0000001).value(), 1.0);
        assert_eq!(Efficiency::saturating(-0.0000001).value(), 0.0);
        assert_eq!(Efficiency::saturating(0.45).value(), 0.45);
    }

    #[test]
    #[should_panic(expected = "invalid efficiency")]
    fn new_panics_above_unity() {
        let _ = Efficiency::new(1.5);
    }

    #[test]
    fn chaining_stages() {
        let total = Efficiency::new(0.5) * Efficiency::new(0.5);
        assert_eq!(total.value(), 0.25);
    }

    #[test]
    fn percent_and_display() {
        let e = Efficiency::new(0.308);
        assert!((e.percent() - 30.8).abs() < 1e-12);
        assert_eq!(format!("{:.1}", e), "30.8 %");
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            EfficiencyError::Negative.to_string(),
            "efficiency was negative"
        );
        assert_eq!(
            EfficiencyError::AboveUnity.to_string(),
            "efficiency exceeded 1.0"
        );
        assert_eq!(
            EfficiencyError::NotANumber.to_string(),
            "efficiency was NaN"
        );
    }
}
