//! Electric charge.

use crate::{Amps, Energy, Seconds, Volts};

quantity! {
    /// An electric charge in ampere-seconds (coulombs).
    ///
    /// The paper accounts both fuel consumption (`∫ I_fc dt`) and the state
    /// of the charge-storage element in A·s, so `Charge` is the unit of the
    /// storage state of charge, of fuel totals, and of per-slot charge
    /// balances.
    ///
    /// # Examples
    ///
    /// ```
    /// use fcdpm_units::{Charge, Seconds};
    ///
    /// // The paper's 1 F super-capacitor holds 100 mA·min at 12 V.
    /// let cap = Charge::from_milliamp_minutes(100.0);
    /// assert_eq!(cap.amp_seconds(), 6.0);
    /// let i = cap / Seconds::new(30.0);
    /// assert_eq!(i.amps(), 0.2);
    /// ```
    Charge, "A·s", amp_seconds
}

impl Charge {
    /// Creates a charge from milliampere-minutes (a capacity unit used in
    /// the paper for the super-capacitor).
    ///
    /// # Panics
    ///
    /// Panics if `ma_min` is NaN.
    #[must_use]
    pub fn from_milliamp_minutes(ma_min: f64) -> Self {
        Self::new(ma_min * 60.0 / 1000.0)
    }

    /// Creates a charge from ampere-hours.
    ///
    /// # Panics
    ///
    /// Panics if `ah` is NaN.
    #[must_use]
    pub fn from_amp_hours(ah: f64) -> Self {
        Self::new(ah * 3600.0)
    }

    /// Returns the charge in ampere-hours.
    #[must_use]
    pub fn amp_hours(self) -> f64 {
        self.amp_seconds() / 3600.0
    }

    /// Returns the energy this charge represents at potential `v`.
    #[must_use]
    pub fn at_volts(self, v: Volts) -> Energy {
        Energy::new(self.amp_seconds() * v.volts())
    }
}

/// `Q / t = I`
impl core::ops::Div<Seconds> for Charge {
    type Output = Amps;
    fn div(self, rhs: Seconds) -> Amps {
        Amps::new(self.amp_seconds() / rhs.seconds())
    }
}

/// `Q / I = t`
impl core::ops::Div<Amps> for Charge {
    type Output = Seconds;
    fn div(self, rhs: Amps) -> Seconds {
        Seconds::new(self.amp_seconds() / rhs.amps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_units() {
        assert_eq!(Charge::from_milliamp_minutes(100.0).amp_seconds(), 6.0);
        assert_eq!(Charge::from_amp_hours(1.0).amp_seconds(), 3600.0);
        assert_eq!(Charge::new(7200.0).amp_hours(), 2.0);
    }

    #[test]
    fn quotients() {
        let q = Charge::new(10.67);
        assert!((q / Seconds::new(20.0)).amps() - 0.5335 < 1e-12);
        assert!(((q / Amps::new(0.5335)).seconds() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn energy_at_bus_voltage() {
        // Section 3.2: the FC delivers 16 A·s at 12 V → 192 J.
        let q = Charge::new(16.0);
        assert_eq!(q.at_volts(Volts::new(12.0)).joules(), 192.0);
    }

    #[test]
    fn display() {
        assert_eq!(Charge::new(13.45).to_string(), "13.45 A·s");
    }
}
