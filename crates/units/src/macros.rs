//! Internal macro generating the quantity newtypes.

/// Generates a `f64`-backed quantity newtype with the arithmetic every
/// quantity shares: same-type add/sub, scaling by `f64`, ratio of two values,
/// ordering helpers and serde support.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $accessor:ident
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        #[derive(serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new value from a raw magnitude in base units.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN. NaN quantities silently poison an
            /// entire simulation, so they are rejected at construction.
            #[must_use]
            #[track_caller]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                Self(value)
            }

            /// Returns the raw magnitude in base units.
            #[must_use]
            pub fn $accessor(self) -> f64 {
                self.0
            }

            /// Returns `true` if the magnitude is finite (neither infinite nor NaN).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` if the magnitude is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns `true` if the magnitude is strictly negative.
            #[must_use]
            pub fn is_negative(self) -> bool {
                self.0 < 0.0
            }

            /// Returns the magnitude-wise absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            #[track_caller]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `self` bounded below by zero.
            #[must_use]
            pub fn max_zero(self) -> Self {
                Self(self.0.max(0.0))
            }

            /// Compares for approximate equality within `tol` base units.
            #[must_use]
            pub fn approx_eq(self, other: Self, tol: f64) -> bool {
                (self.0 - other.0).abs() <= tol
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities (dimensionless).
        impl core::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}
