//! Simulator error type.

use core::fmt;

use fcdpm_core::CoreError;
use fcdpm_fuelcell::FuelCellError;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A fuel-flow model rejected an operating point the policy demanded.
    FuelModel(FuelCellError),
    /// A core algorithm failed.
    Core(CoreError),
    /// The simulator configuration was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FuelModel(e) => write!(f, "fuel model error: {e}"),
            Self::Core(e) => write!(f, "core error: {e}"),
            Self::InvalidConfig { name } => write!(f, "invalid simulator config `{name}`"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::FuelModel(e) => Some(e),
            Self::Core(e) => Some(e),
            Self::InvalidConfig { .. } => None,
        }
    }
}

impl From<FuelCellError> for SimError {
    fn from(e: FuelCellError) -> Self {
        Self::FuelModel(e)
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcdpm_units::Amps;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SimError::from(FuelCellError::OutOfDomain {
            current: Amps::new(5.0),
        });
        assert!(e.to_string().contains("fuel model error"));
        assert!(e.source().is_some());
        let e = SimError::InvalidConfig {
            name: "control_step",
        };
        assert!(e.to_string().contains("control_step"));
        assert!(e.source().is_none());
    }
}
