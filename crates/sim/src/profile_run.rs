//! Simulation over unstructured load profiles.
//!
//! [`HybridSimulator::run_profile`] drives an FC output policy over a
//! piecewise-constant [`LoadProfile`] with no slot structure — the
//! representation multi-device compositions produce. Policies that need
//! slot boundaries (FC-DPM) are not meaningful here; the load-following
//! and windowed-averaging policies are.

use fcdpm_core::policy::{FcOutputPolicy, PolicyPhase};
use fcdpm_storage::ChargeStorage;
use fcdpm_units::Seconds;
use fcdpm_workload::LoadProfile;

use crate::{HybridSimulator, ProfileRecorder, SimError, SimMetrics, SimResult};

impl HybridSimulator<'_> {
    /// Runs `policy` over an unstructured load profile.
    ///
    /// Every point is integrated in control chunks exactly as in
    /// [`run`](Self::run); all chunks present as
    /// [`PolicyPhase::Active`] since there is no slot structure to
    /// distinguish phases.
    ///
    /// # Errors
    ///
    /// Propagates fuel-model errors.
    pub fn run_profile(
        &self,
        profile: &LoadProfile,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
    ) -> Result<SimResult, SimError> {
        self.run_profile_internal(profile, policy, storage, None)
    }

    /// [`run_profile`](Self::run_profile) with current-profile recording.
    ///
    /// # Errors
    ///
    /// Propagates fuel-model errors.
    pub fn run_profile_recorded(
        &self,
        profile: &LoadProfile,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
        recorder: &mut ProfileRecorder,
    ) -> Result<SimResult, SimError> {
        self.run_profile_internal(profile, policy, storage, Some(recorder))
    }

    fn run_profile_internal(
        &self,
        profile: &LoadProfile,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
        mut recorder: Option<&mut ProfileRecorder>,
    ) -> Result<SimResult, SimError> {
        let mut metrics = SimMetrics::new();
        let mut time = Seconds::ZERO;
        for point in profile.points() {
            if point.duration <= Seconds::ZERO {
                continue;
            }

            // Chunk-coalescing fast path, as in `run_internal`: a steady
            // setpoint integrates the whole point in closed form unless
            // the recorder still needs per-chunk samples.
            let record_pending = recorder.as_deref().is_some_and(ProfileRecorder::active);
            if self.coalescing_enabled() && !record_pending {
                if let Some(demanded) =
                    policy.steady_current(PolicyPhase::Active, point.current, storage.soc())
                {
                    metrics.policy_consultations += 1;
                    self.integrate_coalesced(
                        point.current,
                        demanded,
                        point.duration,
                        storage,
                        &mut metrics,
                        None,
                    )?;
                    time += point.duration;
                    continue;
                }
                metrics.policy_consultations += 1;
            }

            let residual_floor = self.control_step() * crate::simulator::RESIDUAL_FLOOR_FRACTION;
            let mut remaining = point.duration;
            while remaining > Seconds::ZERO {
                let mut dt = remaining.min(self.control_step());
                if remaining - dt <= residual_floor {
                    // Widen the final chunk to absorb the floating-point
                    // residual of `remaining -= dt`.
                    dt = remaining;
                }
                let demanded =
                    policy.segment_current(PolicyPhase::Active, point.current, storage.soc());
                metrics.policy_consultations += 1;
                let i_f = self.range().clamp(demanded);
                let i_fc = self.fuel_model().stack_current(i_f)?;
                metrics.fuel.consume(i_fc, dt);
                metrics.delivered_charge += i_f * dt;
                metrics.load_charge += point.current * dt;
                let flow = storage.step(self.buffer_net(i_f - point.current), dt);
                metrics.bled_charge += flow.bled;
                metrics.deficit_charge += flow.deficit;
                metrics.deficit_time += crate::simulator::deficit_time_of(&flow, dt);
                metrics.chunks_stepped += 1;
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.record_chunk(time, dt, point.current, i_f, i_fc, storage.soc());
                }
                time += dt;
                remaining -= dt;
            }
        }
        metrics.final_soc = storage.soc();
        Ok(SimResult { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcdpm_core::policy::{AsapDpm, ConvDpm, WindowedAverage};
    use fcdpm_device::presets;
    use fcdpm_storage::IdealStorage;
    use fcdpm_units::{Amps, Charge};
    use fcdpm_workload::LoadPoint;

    fn square_wave(cycles: usize) -> LoadProfile {
        let mut points = Vec::new();
        for _ in 0..cycles {
            points.push(LoadPoint {
                duration: Seconds::new(10.0),
                current: Amps::new(0.2),
            });
            points.push(LoadPoint {
                duration: Seconds::new(10.0),
                current: Amps::new(1.0),
            });
        }
        LoadProfile::new("square", points)
    }

    #[test]
    fn conv_fuel_matches_closed_form_on_profile() {
        let spec = presets::dvd_camcorder();
        let sim = HybridSimulator::dac07(&spec);
        let profile = square_wave(5);
        let mut storage = IdealStorage::new(Charge::new(1e6), Charge::new(5e5));
        let m = sim
            .run_profile(&profile, &mut ConvDpm::dac07(), &mut storage)
            .unwrap()
            .metrics;
        let expect = 1.3061 * profile.total_duration().seconds();
        assert!((m.fuel.total().amp_seconds() - expect).abs() < 0.1);
    }

    #[test]
    fn windowed_average_beats_following_on_square_wave() {
        let spec = presets::dvd_camcorder();
        let sim = HybridSimulator::dac07(&spec);
        let profile = square_wave(30);
        let cap = Charge::new(30.0);
        let run = |policy: &mut dyn FcOutputPolicy| {
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            sim.run_profile(&profile, policy, &mut storage)
                .unwrap()
                .metrics
        };
        let asap = run(&mut AsapDpm::dac07(cap));
        let windowed = run(&mut WindowedAverage::dac07());
        assert!(
            windowed.fuel.total() < asap.fuel.total(),
            "windowed {} ≥ asap {}",
            windowed.fuel.total(),
            asap.fuel.total()
        );
        // And no brownouts with an adequate buffer.
        assert!(windowed.deficit_charge.is_zero());
    }

    #[test]
    fn profile_run_conserves_charge() {
        let spec = presets::dvd_camcorder();
        let sim = HybridSimulator::dac07(&spec);
        let profile = square_wave(10);
        let cap = Charge::new(30.0);
        let mut storage = IdealStorage::new(cap, cap * 0.5);
        let initial = storage.soc();
        let mut policy = WindowedAverage::dac07();
        let m = sim
            .run_profile(&profile, &mut policy, &mut storage)
            .unwrap()
            .metrics;
        let lhs = m.delivered_charge.amp_seconds();
        let rhs = m.load_charge.amp_seconds()
            + (m.final_soc - initial).amp_seconds()
            + m.bled_charge.amp_seconds()
            - m.deficit_charge.amp_seconds();
        assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn residual_float_chunk_is_absorbed() {
        // 0.7 s at a 0.1 s step: `remaining -= dt` leaves a ~2.8e-17 s
        // residual that used to become an eighth ghost chunk. The epsilon
        // floor folds it into the seventh.
        use fcdpm_fuelcell::LinearEfficiency;
        use fcdpm_units::CurrentRange;
        let spec = presets::dvd_camcorder();
        let sim = HybridSimulator::new(
            &spec,
            Box::new(LinearEfficiency::dac07()),
            CurrentRange::dac07(),
            Seconds::new(0.1),
        )
        .unwrap();
        let profile = LoadProfile::new(
            "residual",
            vec![LoadPoint {
                duration: Seconds::new(0.7),
                current: Amps::new(0.4),
            }],
        );
        let cap = Charge::new(30.0);
        let mut storage = IdealStorage::new(cap, cap * 0.5);
        // ASAP-DPM offers no steady hint, so this exercises the per-chunk
        // loop the floor protects.
        let mut policy = AsapDpm::dac07(cap);
        let m = sim
            .run_profile(&profile, &mut policy, &mut storage)
            .unwrap()
            .metrics;
        assert_eq!(m.chunks_stepped, 7, "ghost residual chunk leaked");
        assert!((m.duration().seconds() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn profile_fast_path_counters() {
        let spec = presets::dvd_camcorder();
        let sim = HybridSimulator::dac07(&spec);
        let profile = square_wave(5);
        let mut storage = IdealStorage::new(Charge::new(1e6), Charge::new(5e5));
        let m = sim
            .run_profile(&profile, &mut ConvDpm::dac07(), &mut storage)
            .unwrap()
            .metrics;
        // Ten 10 s points, each coalesced into one closed-form update of
        // twenty 0.5 s chunks' worth of work.
        assert_eq!(m.chunks_stepped, 0);
        assert_eq!(m.chunks_coalesced, 200);
        assert_eq!(m.policy_consultations, 10);
    }

    #[test]
    fn recorded_profile_run_samples() {
        let spec = presets::dvd_camcorder();
        let sim = HybridSimulator::dac07(&spec);
        let profile = square_wave(2);
        let mut storage = IdealStorage::new(Charge::new(30.0), Charge::new(15.0));
        let mut rec = ProfileRecorder::new(Seconds::new(1.0), Seconds::new(20.0));
        sim.run_profile_recorded(&profile, &mut ConvDpm::dac07(), &mut storage, &mut rec)
            .unwrap();
        assert_eq!(rec.samples().len(), 21);
    }
}
