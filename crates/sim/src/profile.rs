//! Current-profile recording (the data behind Figure 7).

use fcdpm_units::{Amps, Charge, Seconds};

/// One sample of the simulated current profile.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProfileSample {
    /// Simulation time.
    pub time: Seconds,
    /// Load current `I_ld`.
    pub i_load: Amps,
    /// FC system output current `I_F`.
    pub i_f: Amps,
    /// Stack current `I_fc`.
    pub i_fc: Amps,
    /// Storage state of charge.
    pub soc: Charge,
}

/// Records the piecewise-constant current profile of a run at a fixed
/// sampling interval.
///
/// # Examples
///
/// ```
/// use fcdpm_sim::ProfileRecorder;
/// use fcdpm_units::Seconds;
///
/// let rec = ProfileRecorder::new(Seconds::new(0.5), Seconds::new(300.0));
/// assert!(rec.samples().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRecorder {
    interval: Seconds,
    horizon: Seconds,
    next_sample: Seconds,
    samples: Vec<ProfileSample>,
}

impl ProfileRecorder {
    /// Creates a recorder sampling every `interval` up to `horizon` of
    /// simulated time (Figure 7 uses 300 s).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive or `horizon` is negative.
    #[must_use]
    #[track_caller]
    pub fn new(interval: Seconds, horizon: Seconds) -> Self {
        assert!(
            interval > Seconds::ZERO,
            "sampling interval must be positive"
        );
        assert!(!horizon.is_negative(), "horizon must be non-negative");
        Self {
            interval,
            horizon,
            next_sample: Seconds::ZERO,
            samples: Vec::new(),
        }
    }

    /// The samples recorded so far, in time order.
    #[must_use]
    pub fn samples(&self) -> &[ProfileSample] {
        &self.samples
    }

    /// Consumes the recorder and returns its samples.
    #[must_use]
    pub fn into_samples(self) -> Vec<ProfileSample> {
        self.samples
    }

    /// Whether the recorder still wants samples.
    #[must_use]
    pub fn active(&self) -> bool {
        self.next_sample <= self.horizon
    }

    /// Called by the simulator for every constant-current chunk
    /// `[start, start + duration)`; emits any sample instants that fall
    /// inside it.
    pub(crate) fn record_chunk(
        &mut self,
        start: Seconds,
        duration: Seconds,
        i_load: Amps,
        i_f: Amps,
        i_fc: Amps,
        soc: Charge,
    ) {
        let end = start + duration;
        while self.active() && self.next_sample < end {
            if self.next_sample >= start {
                self.samples.push(ProfileSample {
                    time: self.next_sample,
                    i_load,
                    i_f,
                    i_fc,
                    soc,
                });
            }
            self.next_sample += self.interval;
        }
    }

    /// Serializes the samples to CSV (`time_s,i_load_a,i_f_a,i_fc_a,soc_as`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,i_load_a,i_f_a,i_fc_a,soc_as\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{:.5},{:.5},{:.5},{:.5}\n",
                s.time.seconds(),
                s.i_load.amps(),
                s.i_f.amps(),
                s.i_fc.amps(),
                s.soc.amp_seconds()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_at_fixed_interval() {
        let mut rec = ProfileRecorder::new(Seconds::new(1.0), Seconds::new(10.0));
        rec.record_chunk(
            Seconds::ZERO,
            Seconds::new(2.5),
            Amps::new(0.2),
            Amps::new(0.5),
            Amps::new(0.4),
            Charge::new(3.0),
        );
        // Samples at t = 0, 1, 2.
        assert_eq!(rec.samples().len(), 3);
        assert_eq!(rec.samples()[2].time, Seconds::new(2.0));
        rec.record_chunk(
            Seconds::new(2.5),
            Seconds::new(1.0),
            Amps::new(1.2),
            Amps::new(0.5),
            Amps::new(0.4),
            Charge::new(2.0),
        );
        // Sample at t = 3 inside [2.5, 3.5).
        assert_eq!(rec.samples().len(), 4);
        assert_eq!(rec.samples()[3].i_load, Amps::new(1.2));
    }

    #[test]
    fn stops_at_horizon() {
        let mut rec = ProfileRecorder::new(Seconds::new(1.0), Seconds::new(2.0));
        rec.record_chunk(
            Seconds::ZERO,
            Seconds::new(100.0),
            Amps::ZERO,
            Amps::ZERO,
            Amps::ZERO,
            Charge::ZERO,
        );
        // t = 0, 1, 2 then inactive.
        assert_eq!(rec.samples().len(), 3);
        assert!(!rec.active());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut rec = ProfileRecorder::new(Seconds::new(1.0), Seconds::new(1.0));
        rec.record_chunk(
            Seconds::ZERO,
            Seconds::new(2.0),
            Amps::new(0.2),
            Amps::new(0.53),
            Amps::new(0.448),
            Charge::new(1.0),
        );
        let csv = rec.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,i_load_a,i_f_a,i_fc_a,soc_as");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0.000,0.20000,0.53000,0.44800"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = ProfileRecorder::new(Seconds::ZERO, Seconds::new(1.0));
    }
}
