//! Fuel-flow models: output current → stack current.

use fcdpm_fuelcell::{FcSystem, FuelCellError, LinearEfficiency};
use fcdpm_units::Amps;

/// Maps a demanded FC system output current `I_F` to the stack current
/// `I_fc` it costs — the fuel-consumption rate the simulator integrates.
///
/// Two implementations ship:
///
/// * [`LinearEfficiency`] — the paper's closed-form Equation 4, used for
///   all headline experiments (fast, exactly the model the optimizer
///   assumes);
/// * [`FcSystem`] — the physically composed stack + converter +
///   controller model, used to quantify the linear model's approximation
///   error.
pub trait FuelFlowModel: core::fmt::Debug {
    /// Stack current when the system outputs `i_f`.
    ///
    /// # Errors
    ///
    /// Returns a [`FuelCellError`] if `i_f` is outside the model's
    /// feasible domain.
    fn stack_current(&self, i_f: Amps) -> Result<Amps, FuelCellError>;
}

impl FuelFlowModel for LinearEfficiency {
    fn stack_current(&self, i_f: Amps) -> Result<Amps, FuelCellError> {
        LinearEfficiency::stack_current(self, i_f)
    }
}

impl FuelFlowModel for FcSystem {
    fn stack_current(&self, i_f: Amps) -> Result<Amps, FuelCellError> {
        Ok(self.operating_point(i_f)?.i_fc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_implements_trait() {
        let model: &dyn FuelFlowModel = &LinearEfficiency::dac07();
        let i = model.stack_current(Amps::new(1.2)).unwrap();
        assert!((i.amps() - 1.306).abs() < 1e-3);
    }

    #[test]
    fn physical_model_implements_trait() {
        let sys = FcSystem::dac07_variable_fan();
        let model: &dyn FuelFlowModel = &sys;
        let i = model.stack_current(Amps::new(1.2)).unwrap();
        assert!((1.2..1.45).contains(&i.amps()));
    }

    #[test]
    fn models_agree_in_order_of_magnitude() {
        let lin = LinearEfficiency::dac07();
        let sys = FcSystem::dac07_variable_fan();
        for i_f in [0.1, 0.5, 1.0, 1.2] {
            let a = FuelFlowModel::stack_current(&lin, Amps::new(i_f)).unwrap();
            let b = sys.stack_current(Amps::new(i_f)).unwrap();
            let ratio = a / b;
            assert!(
                (0.5..2.0).contains(&ratio),
                "models disagree wildly at {i_f} A: {a} vs {b}"
            );
        }
    }
}
