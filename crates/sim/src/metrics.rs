//! Simulation metrics.

use core::fmt;

use fcdpm_fuelcell::FuelGauge;
use fcdpm_units::{Amps, Charge, Seconds};

/// Aggregate results of one simulation run.
#[derive(Debug, Default, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimMetrics {
    /// Fuel consumption (`∫ I_fc dt`) and elapsed time.
    pub fuel: FuelGauge,
    /// Total charge drawn by the load.
    pub load_charge: Charge,
    /// Total charge delivered by the FC system (`∫ I_F dt`).
    pub delivered_charge: Charge,
    /// Charge dissipated through the bleeder by-pass (storage overflow).
    pub bled_charge: Charge,
    /// Unmet load charge (brownouts).
    pub deficit_charge: Charge,
    /// Number of integration chunks that saw a deficit.
    pub deficit_chunks: u64,
    /// Number of slots in which the DPM layer slept.
    pub sleeps: usize,
    /// Number of slots simulated.
    pub slots: usize,
    /// Accumulated task latency from wake-up/start-up transitions.
    pub task_latency: Seconds,
    /// Storage state of charge at the end of the run.
    pub final_soc: Charge,
}

impl SimMetrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total wall-clock duration of the run.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.fuel.elapsed()
    }

    /// Mean FC system output current over the run.
    #[must_use]
    pub fn mean_output_current(&self) -> Amps {
        if self.duration().is_zero() {
            Amps::ZERO
        } else {
            self.delivered_charge / self.duration()
        }
    }

    /// Mean stack current (the fuel-consumption rate).
    #[must_use]
    pub fn mean_stack_current(&self) -> Amps {
        self.fuel.mean_stack_current()
    }

    /// This run's fuel as a fraction of `baseline`'s (the paper's
    /// normalized-fuel tables). Durations are normalized out so runs of
    /// slightly different wall-clock lengths compare fairly.
    ///
    /// # Panics
    ///
    /// Panics if either run has zero duration or the baseline consumed no
    /// fuel.
    #[must_use]
    #[track_caller]
    pub fn normalized_fuel(&self, baseline: &Self) -> f64 {
        assert!(
            !self.duration().is_zero() && !baseline.duration().is_zero(),
            "cannot normalize zero-duration runs"
        );
        let own_rate = self.fuel.total().amp_seconds() / self.duration().seconds();
        let base_rate = baseline.fuel.total().amp_seconds() / baseline.duration().seconds();
        assert!(base_rate > 0.0, "baseline consumed no fuel");
        own_rate / base_rate
    }

    /// Lifetime extension over `other` for the same fuel tank: lifetime is
    /// inversely proportional to the fuel rate, so this is
    /// `other_rate / own_rate` (the paper's 1.32× for FC-DPM vs
    /// ASAP-DPM).
    ///
    /// # Panics
    ///
    /// Panics if either run has zero duration or this run consumed no
    /// fuel.
    #[must_use]
    #[track_caller]
    pub fn lifetime_extension_over(&self, other: &Self) -> f64 {
        1.0 / self.normalized_fuel(other)
    }

    /// Fraction of load charge that went unserved.
    #[must_use]
    pub fn brownout_fraction(&self) -> f64 {
        if self.load_charge.is_zero() {
            0.0
        } else {
            self.deficit_charge / self.load_charge
        }
    }

    /// True when the run completed without bleeding or brownouts.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.bled_charge.is_zero() && self.deficit_charge.is_zero()
    }
}

impl fmt::Display for SimMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuel {:.1} over {:.1} min (mean I_fc {:.4})",
            self.fuel.total(),
            self.duration().minutes(),
            self.mean_stack_current()
        )?;
        writeln!(
            f,
            "delivered {:.1}, load {:.1}, bled {:.2}, deficit {:.3}",
            self.delivered_charge, self.load_charge, self.bled_charge, self.deficit_charge
        )?;
        write!(
            f,
            "slots {}, sleeps {}, task latency {:.1}, final SoC {:.2}",
            self.slots, self.sleeps, self.task_latency, self.final_soc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with(fuel_amps: f64, secs: f64) -> SimMetrics {
        let mut m = SimMetrics::new();
        m.fuel.consume(Amps::new(fuel_amps), Seconds::new(secs));
        m
    }

    #[test]
    fn normalization_is_rate_based() {
        let a = metrics_with(0.4, 100.0);
        let b = metrics_with(1.3, 200.0); // longer run, higher rate
        let norm = a.normalized_fuel(&b);
        assert!((norm - 0.4 / 1.3).abs() < 1e-12);
    }

    #[test]
    fn lifetime_extension_is_inverse() {
        let fc = metrics_with(0.308, 100.0);
        let asap = metrics_with(0.408, 100.0);
        let ext = fc.lifetime_extension_over(&asap);
        assert!((ext - 0.408 / 0.308).abs() < 1e-12);
        assert!((ext - 1.32).abs() < 0.01); // the paper's headline
    }

    #[test]
    fn brownout_fraction() {
        let mut m = metrics_with(1.0, 10.0);
        m.load_charge = Charge::new(10.0);
        m.deficit_charge = Charge::new(1.0);
        assert!((m.brownout_fraction() - 0.1).abs() < 1e-12);
        assert!(!m.is_clean());
        assert_eq!(SimMetrics::new().brownout_fraction(), 0.0);
    }

    #[test]
    fn mean_currents() {
        let mut m = metrics_with(0.5, 10.0);
        m.delivered_charge = Charge::new(6.0);
        assert!((m.mean_output_current().amps() - 0.6).abs() < 1e-12);
        assert!((m.mean_stack_current().amps() - 0.5).abs() < 1e-12);
        assert_eq!(SimMetrics::new().mean_output_current(), Amps::ZERO);
    }

    #[test]
    fn display_renders_summary() {
        let mut m = metrics_with(0.4, 60.0);
        m.slots = 3;
        m.sleeps = 2;
        let text = m.to_string();
        assert!(text.contains("mean I_fc 0.4000"));
        assert!(text.contains("slots 3, sleeps 2"));
    }

    #[test]
    #[should_panic(expected = "zero-duration")]
    fn zero_duration_normalization_panics() {
        let a = SimMetrics::new();
        let b = metrics_with(1.0, 1.0);
        let _ = a.normalized_fuel(&b);
    }
}
