//! Simulation metrics.

use core::fmt;

use fcdpm_fuelcell::FuelGauge;
use fcdpm_units::{Amps, Charge, Seconds};

/// Aggregate results of one simulation run.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SimMetrics {
    /// Fuel consumption (`∫ I_fc dt`) and elapsed time.
    pub fuel: FuelGauge,
    /// Total charge drawn by the load.
    pub load_charge: Charge,
    /// Total charge delivered by the FC system (`∫ I_F dt`).
    pub delivered_charge: Charge,
    /// Charge dissipated through the bleeder by-pass (storage overflow).
    pub bled_charge: Charge,
    /// Unmet load charge (brownouts).
    pub deficit_charge: Charge,
    /// Total wall-clock time the load spent browned out.
    ///
    /// Unlike the chunk count it replaces, this is invariant under the
    /// control-step length and under chunk coalescing: within each
    /// integration step the brownout duration is apportioned as
    /// `dt · deficit / (deficit + discharged)`.
    pub deficit_time: Seconds,
    /// Number of slots in which the DPM layer slept.
    pub sleeps: usize,
    /// Number of slots simulated.
    pub slots: usize,
    /// Accumulated task latency from wake-up/start-up transitions.
    pub task_latency: Seconds,
    /// Storage state of charge at the end of the run.
    pub final_soc: Charge,
    /// Work counter: control chunks integrated one at a time.
    pub chunks_stepped: u64,
    /// Work counter: control chunks subsumed by coalesced segments
    /// (the chunks the fast path did *not* have to step).
    pub chunks_coalesced: u64,
    /// Work counter: policy consultations (`steady_current` hints plus
    /// `segment_current` calls).
    pub policy_consultations: u64,
    /// Fault events applied during the run (zero without an attached
    /// [`FaultSchedule`](fcdpm_faults::FaultSchedule)).
    pub faults_applied: u64,
    /// Downward degradation-ladder transitions the FC policy reported
    /// (zero for ordinary, non-resilient policies).
    pub degradations: u64,
    /// Wall-clock time the FC policy spent in a degraded fallback mode.
    pub time_in_fallback: Seconds,
    /// The portion of [`deficit_time`](Self::deficit_time) accrued while
    /// at least one injected fault was shaping the physics.
    pub fault_deficit_time: Seconds,
}

impl SimMetrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total wall-clock duration of the run.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.fuel.elapsed()
    }

    /// Mean FC system output current over the run.
    #[must_use]
    pub fn mean_output_current(&self) -> Amps {
        if self.duration().is_zero() {
            Amps::ZERO
        } else {
            self.delivered_charge / self.duration()
        }
    }

    /// Mean stack current (the fuel-consumption rate).
    #[must_use]
    pub fn mean_stack_current(&self) -> Amps {
        self.fuel.mean_stack_current()
    }

    /// This run's fuel as a fraction of `baseline`'s (the paper's
    /// normalized-fuel tables). Durations are normalized out so runs of
    /// slightly different wall-clock lengths compare fairly.
    ///
    /// # Panics
    ///
    /// Panics if either run has zero duration or the baseline consumed no
    /// fuel.
    #[must_use]
    #[track_caller]
    pub fn normalized_fuel(&self, baseline: &Self) -> f64 {
        assert!(
            !self.duration().is_zero() && !baseline.duration().is_zero(),
            "cannot normalize zero-duration runs"
        );
        let own_rate = self.fuel.total().amp_seconds() / self.duration().seconds();
        let base_rate = baseline.fuel.total().amp_seconds() / baseline.duration().seconds();
        assert!(base_rate > 0.0, "baseline consumed no fuel");
        own_rate / base_rate
    }

    /// Lifetime extension over `other` for the same fuel tank: lifetime is
    /// inversely proportional to the fuel rate, so this is
    /// `other_rate / own_rate` (the paper's 1.32× for FC-DPM vs
    /// ASAP-DPM).
    ///
    /// # Panics
    ///
    /// Panics if either run has zero duration or this run consumed no
    /// fuel.
    #[must_use]
    #[track_caller]
    pub fn lifetime_extension_over(&self, other: &Self) -> f64 {
        1.0 / self.normalized_fuel(other)
    }

    /// Fraction of load charge that went unserved.
    #[must_use]
    pub fn brownout_fraction(&self) -> f64 {
        if self.load_charge.is_zero() {
            0.0
        } else {
            self.deficit_charge / self.load_charge
        }
    }

    /// True when the run completed without bleeding or brownouts.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.bled_charge.is_zero() && self.deficit_charge.is_zero()
    }

    /// A copy with the work counters (`chunks_stepped`,
    /// `chunks_coalesced`, `policy_consultations`) zeroed.
    ///
    /// The counters describe *how* a run was integrated, not *what* it
    /// computed, so they legitimately differ between the coalesced and
    /// per-chunk paths. Comparisons that care about the physics — the
    /// cross-path determinism suite, for one — compare
    /// `a.without_work_counters()` against `b.without_work_counters()`.
    #[must_use]
    pub fn without_work_counters(&self) -> Self {
        Self {
            chunks_stepped: 0,
            chunks_coalesced: 0,
            policy_consultations: 0,
            ..self.clone()
        }
    }
}

// Serde is hand-written (the vendored derive has no attribute support)
// so manifests predating the fault-injection counters read back with
// those counters zeroed. Manifests carrying only the retired
// `deficit_chunks` count are rejected outright: the chunk count scaled
// with the control step, so no faithful `deficit_time` can be recovered
// from it, and its two-release migration window has closed.
impl serde::Serialize for SimMetrics {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("fuel".into(), self.fuel.to_value()),
            ("load_charge".into(), self.load_charge.to_value()),
            ("delivered_charge".into(), self.delivered_charge.to_value()),
            ("bled_charge".into(), self.bled_charge.to_value()),
            ("deficit_charge".into(), self.deficit_charge.to_value()),
            ("deficit_time".into(), self.deficit_time.to_value()),
            ("sleeps".into(), self.sleeps.to_value()),
            ("slots".into(), self.slots.to_value()),
            ("task_latency".into(), self.task_latency.to_value()),
            ("final_soc".into(), self.final_soc.to_value()),
            ("chunks_stepped".into(), self.chunks_stepped.to_value()),
            ("chunks_coalesced".into(), self.chunks_coalesced.to_value()),
            (
                "policy_consultations".into(),
                self.policy_consultations.to_value(),
            ),
            ("faults_applied".into(), self.faults_applied.to_value()),
            ("degradations".into(), self.degradations.to_value()),
            ("time_in_fallback".into(), self.time_in_fallback.to_value()),
            (
                "fault_deficit_time".into(),
                self.fault_deficit_time.to_value(),
            ),
        ])
    }
}

impl serde::Deserialize for SimMetrics {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("SimMetrics: expected a map"))?;
        let deficit_time = match serde::field::<Option<Seconds>>(map, "deficit_time")? {
            Some(t) => t,
            None if serde::field::<Option<u64>>(map, "deficit_chunks")?.is_some() => {
                return Err(serde::Error::custom(
                    "SimMetrics: the `deficit_chunks` schema was retired — the chunk \
                     count scaled with the control step and cannot be converted to \
                     `deficit_time`; regenerate the manifest with a current build",
                ));
            }
            None => Seconds::ZERO,
        };
        Ok(Self {
            fuel: serde::field(map, "fuel")?,
            load_charge: serde::field(map, "load_charge")?,
            delivered_charge: serde::field(map, "delivered_charge")?,
            bled_charge: serde::field(map, "bled_charge")?,
            deficit_charge: serde::field(map, "deficit_charge")?,
            deficit_time,
            sleeps: serde::field(map, "sleeps")?,
            slots: serde::field(map, "slots")?,
            task_latency: serde::field(map, "task_latency")?,
            final_soc: serde::field(map, "final_soc")?,
            // Absent in pre-coalescing manifests: zero work recorded.
            chunks_stepped: serde::field::<Option<u64>>(map, "chunks_stepped")?.unwrap_or(0),
            chunks_coalesced: serde::field::<Option<u64>>(map, "chunks_coalesced")?.unwrap_or(0),
            policy_consultations: serde::field::<Option<u64>>(map, "policy_consultations")?
                .unwrap_or(0),
            // Absent in pre-fault-injection manifests: nothing injected.
            faults_applied: serde::field::<Option<u64>>(map, "faults_applied")?.unwrap_or(0),
            degradations: serde::field::<Option<u64>>(map, "degradations")?.unwrap_or(0),
            time_in_fallback: serde::field::<Option<Seconds>>(map, "time_in_fallback")?
                .unwrap_or(Seconds::ZERO),
            fault_deficit_time: serde::field::<Option<Seconds>>(map, "fault_deficit_time")?
                .unwrap_or(Seconds::ZERO),
        })
    }
}

impl fmt::Display for SimMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuel {:.1} over {:.1} min (mean I_fc {:.4})",
            self.fuel.total(),
            self.duration().minutes(),
            self.mean_stack_current()
        )?;
        writeln!(
            f,
            "delivered {:.1}, load {:.1}, bled {:.2}, deficit {:.3}",
            self.delivered_charge, self.load_charge, self.bled_charge, self.deficit_charge
        )?;
        write!(
            f,
            "slots {}, sleeps {}, task latency {:.1}, final SoC {:.2}",
            self.slots, self.sleeps, self.task_latency, self.final_soc
        )?;
        if self.faults_applied > 0 {
            write!(
                f,
                "\nfaults {}, degradations {}, fallback {:.1}, deficit under fault {:.3}",
                self.faults_applied,
                self.degradations,
                self.time_in_fallback,
                self.fault_deficit_time
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with(fuel_amps: f64, secs: f64) -> SimMetrics {
        let mut m = SimMetrics::new();
        m.fuel.consume(Amps::new(fuel_amps), Seconds::new(secs));
        m
    }

    #[test]
    fn normalization_is_rate_based() {
        let a = metrics_with(0.4, 100.0);
        let b = metrics_with(1.3, 200.0); // longer run, higher rate
        let norm = a.normalized_fuel(&b);
        assert!((norm - 0.4 / 1.3).abs() < 1e-12);
    }

    #[test]
    fn lifetime_extension_is_inverse() {
        let fc = metrics_with(0.308, 100.0);
        let asap = metrics_with(0.408, 100.0);
        let ext = fc.lifetime_extension_over(&asap);
        assert!((ext - 0.408 / 0.308).abs() < 1e-12);
        assert!((ext - 1.32).abs() < 0.01); // the paper's headline
    }

    #[test]
    fn brownout_fraction() {
        let mut m = metrics_with(1.0, 10.0);
        m.load_charge = Charge::new(10.0);
        m.deficit_charge = Charge::new(1.0);
        assert!((m.brownout_fraction() - 0.1).abs() < 1e-12);
        assert!(!m.is_clean());
        assert_eq!(SimMetrics::new().brownout_fraction(), 0.0);
    }

    #[test]
    fn mean_currents() {
        let mut m = metrics_with(0.5, 10.0);
        m.delivered_charge = Charge::new(6.0);
        assert!((m.mean_output_current().amps() - 0.6).abs() < 1e-12);
        assert!((m.mean_stack_current().amps() - 0.5).abs() < 1e-12);
        assert_eq!(SimMetrics::new().mean_output_current(), Amps::ZERO);
    }

    #[test]
    fn display_renders_summary() {
        let mut m = metrics_with(0.4, 60.0);
        m.slots = 3;
        m.sleeps = 2;
        let text = m.to_string();
        assert!(text.contains("mean I_fc 0.4000"));
        assert!(text.contains("slots 3, sleeps 2"));
    }

    #[test]
    #[should_panic(expected = "zero-duration")]
    fn zero_duration_normalization_panics() {
        let a = SimMetrics::new();
        let b = metrics_with(1.0, 1.0);
        let _ = a.normalized_fuel(&b);
    }

    #[test]
    fn serde_round_trip_preserves_all_fields() {
        use serde::{Deserialize, Serialize};
        let mut m = metrics_with(0.4, 60.0);
        m.load_charge = Charge::new(20.0);
        m.delivered_charge = Charge::new(24.0);
        m.bled_charge = Charge::new(1.0);
        m.deficit_charge = Charge::new(0.5);
        m.deficit_time = Seconds::new(1.25);
        m.sleeps = 2;
        m.slots = 3;
        m.task_latency = Seconds::new(4.5);
        m.final_soc = Charge::new(3.0);
        m.chunks_stepped = 120;
        m.chunks_coalesced = 480;
        m.policy_consultations = 126;
        m.faults_applied = 3;
        m.degradations = 2;
        m.time_in_fallback = Seconds::new(42.0);
        m.fault_deficit_time = Seconds::new(0.5);
        let back = SimMetrics::from_value(&m.to_value()).expect("round trip");
        assert_eq!(m, back);
    }

    #[test]
    fn serde_no_longer_emits_deficit_chunks_alias() {
        // The retired field must never reappear on the writer side.
        use serde::{Serialize, Value};
        let mut m = SimMetrics::new();
        m.deficit_time = Seconds::new(1.25);
        let Value::Map(map) = m.to_value() else {
            panic!("expected a map");
        };
        assert!(map.iter().all(|(k, _)| k != "deficit_chunks"));
        assert!(map.iter().any(|(k, _)| k == "deficit_time"));
    }

    #[test]
    fn serde_rejects_retired_deficit_chunks_manifests() {
        use serde::{Deserialize, Serialize, Value};
        // A pre-deficit_time manifest carrying only the retired chunk
        // count: the count scaled with the control step, so rather than
        // guess a conversion the reader refuses with a clear error.
        let mut m = SimMetrics::new();
        m.fuel.consume(Amps::new(1.0), Seconds::new(10.0));
        let Value::Map(mut map) = m.to_value() else {
            panic!("expected a map");
        };
        map.retain(|(k, _)| k != "deficit_time");
        map.push(("deficit_chunks".into(), Value::UInt(4)));
        let err = SimMetrics::from_value(&Value::Map(map)).expect_err("legacy schema");
        let msg = err.to_string();
        assert!(msg.contains("deficit_chunks"), "{msg}");
        assert!(msg.contains("regenerate"), "{msg}");
    }

    #[test]
    fn serde_defaults_optional_counters_when_absent() {
        use serde::{Deserialize, Serialize, Value};
        // Manifests predating the work/fault counters (but written after
        // `deficit_time` replaced the chunk count) still read back, with
        // the missing counters zeroed.
        let mut m = SimMetrics::new();
        m.fuel.consume(Amps::new(1.0), Seconds::new(10.0));
        m.deficit_time = Seconds::new(2.0);
        let Value::Map(mut map) = m.to_value() else {
            panic!("expected a map");
        };
        map.retain(|(k, _)| {
            k != "chunks_stepped"
                && k != "chunks_coalesced"
                && k != "policy_consultations"
                && k != "faults_applied"
                && k != "degradations"
                && k != "time_in_fallback"
                && k != "fault_deficit_time"
        });
        let back = SimMetrics::from_value(&Value::Map(map)).expect("pre-counter manifest");
        assert_eq!(back.deficit_time, Seconds::new(2.0));
        assert_eq!(back.chunks_stepped, 0);
        assert_eq!(back.chunks_coalesced, 0);
        assert_eq!(back.policy_consultations, 0);
        assert_eq!(back.faults_applied, 0);
        assert_eq!(back.degradations, 0);
        assert_eq!(back.time_in_fallback, Seconds::ZERO);
        assert_eq!(back.fault_deficit_time, Seconds::ZERO);
    }

    #[test]
    fn without_work_counters_zeroes_only_the_counters() {
        let mut m = metrics_with(0.4, 60.0);
        m.deficit_time = Seconds::new(0.75);
        m.chunks_stepped = 10;
        m.chunks_coalesced = 20;
        m.policy_consultations = 11;
        let stripped = m.without_work_counters();
        assert_eq!(stripped.chunks_stepped, 0);
        assert_eq!(stripped.chunks_coalesced, 0);
        assert_eq!(stripped.policy_consultations, 0);
        assert_eq!(stripped.deficit_time, m.deficit_time);
        assert_eq!(stripped.fuel, m.fuel);
    }
}
