//! Lifetime-to-empty simulation.
//!
//! The paper's headline metric is *operational lifetime*: how long a given
//! fuel supply powers the system. [`HybridSimulator::run_until_depleted`]
//! replays a trace cyclically until the hydrogen tank runs dry and reports
//! the wall-clock lifetime — the direct form of Section 5's "lifetime is
//! inversely proportional to the fuel consumption".

use fcdpm_core::dpm::SleepPolicy;
use fcdpm_core::policy::FcOutputPolicy;
use fcdpm_fuelcell::HydrogenTank;
use fcdpm_storage::ChargeStorage;
use fcdpm_units::{Charge, Seconds};
use fcdpm_workload::Trace;

use crate::{HybridSimulator, SimError, SimMetrics};

/// The outcome of a run-until-depleted simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeResult {
    /// Wall-clock time until the tank ran dry.
    pub lifetime: Seconds,
    /// Number of complete trace cycles finished before depletion.
    pub full_cycles: usize,
    /// Fuel consumed (equals the tank capacity unless the cycle cap hit).
    pub fuel_consumed: Charge,
    /// Whether the tank was actually emptied (false if `max_cycles`
    /// elapsed first).
    pub depleted: bool,
    /// Metrics accumulated over the whole run.
    pub metrics: SimMetrics,
}

impl HybridSimulator<'_> {
    /// Replays `trace` cyclically until `tank` is empty (or `max_cycles`
    /// trace repetitions have run), carrying the policy, predictor and
    /// storage state across cycles.
    ///
    /// The depletion instant inside the final cycle is interpolated at
    /// that cycle's mean fuel rate; with the paper's multi-minute traces
    /// the interpolation error is far below one cycle.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the per-cycle runs.
    ///
    /// # Panics
    ///
    /// Panics if `max_cycles` is zero or `trace` is empty.
    pub fn run_until_depleted(
        &self,
        trace: &Trace,
        sleep: &mut dyn SleepPolicy,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
        tank: &HydrogenTank,
        max_cycles: usize,
    ) -> Result<LifetimeResult, SimError> {
        assert!(max_cycles >= 1, "need at least one cycle");
        assert!(!trace.is_empty(), "trace must contain slots");

        let mut total = SimMetrics::new();
        let mut full_cycles = 0usize;
        for _ in 0..max_cycles {
            let before = total.fuel.total();
            let cycle = self.run(trace, sleep, policy, storage)?.metrics;
            accumulate(&mut total, &cycle);
            if total.fuel.total() >= tank.capacity() {
                // Interpolate the depletion instant within this cycle.
                let cycle_fuel = total.fuel.total() - before;
                let overshoot = total.fuel.total() - tank.capacity();
                let fraction = if cycle_fuel.is_zero() {
                    0.0
                } else {
                    1.0 - overshoot / cycle_fuel
                };
                let lifetime =
                    total.duration() - cycle.duration() * (1.0 - fraction.clamp(0.0, 1.0));
                return Ok(LifetimeResult {
                    lifetime,
                    full_cycles,
                    fuel_consumed: tank.capacity(),
                    depleted: true,
                    metrics: total,
                });
            }
            full_cycles += 1;
        }
        Ok(LifetimeResult {
            lifetime: total.duration(),
            full_cycles,
            fuel_consumed: total.fuel.total(),
            depleted: false,
            metrics: total,
        })
    }
}

fn accumulate(total: &mut SimMetrics, cycle: &SimMetrics) {
    total.fuel.merge(&cycle.fuel);
    total.load_charge += cycle.load_charge;
    total.delivered_charge += cycle.delivered_charge;
    total.bled_charge += cycle.bled_charge;
    total.deficit_charge += cycle.deficit_charge;
    total.deficit_time += cycle.deficit_time;
    total.sleeps += cycle.sleeps;
    total.slots += cycle.slots;
    total.task_latency += cycle.task_latency;
    total.final_soc = cycle.final_soc;
    total.chunks_stepped += cycle.chunks_stepped;
    total.chunks_coalesced += cycle.chunks_coalesced;
    total.policy_consultations += cycle.policy_consultations;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcdpm_core::dpm::PredictiveSleep;
    use fcdpm_core::policy::{ConvDpm, FcDpm};
    use fcdpm_core::FuelOptimizer;
    use fcdpm_storage::IdealStorage;
    use fcdpm_units::Amps;
    use fcdpm_workload::Scenario;

    fn lifetime_of(policy: &mut dyn FcOutputPolicy, tank: &HydrogenTank) -> LifetimeResult {
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::new(cap, cap * 0.5);
        let mut sleep = PredictiveSleep::new(scenario.rho);
        sim.run_until_depleted(&scenario.trace, &mut sleep, policy, &mut storage, tank, 100)
            .expect("simulation succeeds")
    }

    #[test]
    fn fcdpm_outlives_conv() {
        let tank = HydrogenTank::from_stack_charge(Charge::new(5000.0));
        let conv = lifetime_of(&mut ConvDpm::dac07(), &tank);
        let scenario = Scenario::experiment1();
        let mut fc = FcDpm::new(
            FuelOptimizer::dac07(),
            &scenario.device,
            Charge::from_milliamp_minutes(100.0),
            scenario.sigma,
            scenario.active_current_estimate,
        );
        let fcdpm = lifetime_of(&mut fc, &tank);
        assert!(conv.depleted && fcdpm.depleted);
        let extension = fcdpm.lifetime / conv.lifetime;
        // Table 2: ≈ 1/0.31 ≈ 3.2×.
        assert!(
            (2.5..4.0).contains(&extension),
            "lifetime extension {extension:.2}"
        );
    }

    #[test]
    fn lifetime_matches_rate_prediction() {
        let tank = HydrogenTank::from_stack_charge(Charge::new(5000.0));
        let res = lifetime_of(&mut ConvDpm::dac07(), &tank);
        // Conv runs at a constant stack current, so lifetime = tank / rate
        // exactly (up to the final-cycle interpolation).
        let rate = Amps::new(1.3061);
        let predicted = tank.lifetime_at(rate);
        let err = (res.lifetime / predicted - 1.0).abs();
        assert!(err < 0.01, "lifetime off by {err:.4}");
        assert_eq!(res.fuel_consumed, tank.capacity());
    }

    #[test]
    fn cycle_cap_reports_not_depleted() {
        let tank = HydrogenTank::from_stack_charge(Charge::new(1e9));
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::new(cap, cap * 0.5);
        let mut sleep = PredictiveSleep::new(scenario.rho);
        let mut policy = ConvDpm::dac07();
        let res = sim
            .run_until_depleted(
                &scenario.trace,
                &mut sleep,
                &mut policy,
                &mut storage,
                &tank,
                3,
            )
            .expect("simulation succeeds");
        assert!(!res.depleted);
        assert_eq!(res.full_cycles, 3);
        assert_eq!(res.metrics.slots, scenario.trace.len() * 3);
    }

    #[test]
    fn tiny_tank_depletes_mid_first_cycle() {
        let tank = HydrogenTank::from_stack_charge(Charge::new(10.0));
        let res = lifetime_of(&mut ConvDpm::dac07(), &tank);
        assert!(res.depleted);
        assert_eq!(res.full_cycles, 0);
        // 10 A·s at 1.3061 A ≈ 7.66 s.
        assert!((res.lifetime.seconds() - 10.0 / 1.3061).abs() < 1.0);
    }
}
