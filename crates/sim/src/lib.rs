//! Co-simulator for DPM-enabled devices on fuel-cell hybrid power sources.
//!
//! [`HybridSimulator`] plays a task-slot [`Trace`](fcdpm_workload::Trace)
//! through four interacting models:
//!
//! 1. the **device** ([`fcdpm_device`]) — its power-state machine turns
//!    each slot plus the DPM sleep decision into a piecewise-constant load
//!    timeline;
//! 2. the **DPM policy** ([`fcdpm_core::dpm`]) — decides sleeping from
//!    predicted idle lengths;
//! 3. the **FC output policy** ([`fcdpm_core::policy`]) — decides the
//!    fuel-cell system's output current for every stretch;
//! 4. the **charge storage** ([`fcdpm_storage`]) — absorbs or supplies
//!    the difference, with bleeder overflow and brownout accounting.
//!
//! Fuel is integrated through a [`FuelFlowModel`] — either the paper's
//! linear efficiency model (Equation 4) or the physically composed
//! [`FcSystem`](fcdpm_fuelcell::FcSystem).
//!
//! # Example
//!
//! ```
//! use fcdpm_core::dpm::PredictiveSleep;
//! use fcdpm_core::policy::ConvDpm;
//! use fcdpm_sim::HybridSimulator;
//! use fcdpm_storage::IdealStorage;
//! use fcdpm_workload::Scenario;
//!
//! # fn main() -> Result<(), fcdpm_sim::SimError> {
//! let scenario = Scenario::experiment1();
//! let sim = HybridSimulator::dac07(&scenario.device);
//! let mut storage = IdealStorage::dac07_supercap();
//! let result = sim.run(
//!     &scenario.trace,
//!     &mut PredictiveSleep::new(scenario.rho),
//!     &mut ConvDpm::dac07(),
//!     &mut storage,
//! )?;
//! assert!(result.metrics.fuel.total().amp_seconds() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fixture;
mod fuel_model;
mod lifetime;
mod metrics;
mod profile;
mod profile_run;
mod simulator;

pub use error::SimError;
pub use fuel_model::FuelFlowModel;
pub use lifetime::LifetimeResult;
pub use metrics::SimMetrics;
pub use profile::{ProfileRecorder, ProfileSample};
pub use simulator::{HybridSimulator, SimResult};
