//! The paper's reference experiment fixture, shared by tests, benches,
//! the batch runner and the CLI.
//!
//! Before this module existed the reference configuration — a
//! 100 mA·min ideal buffer at half charge behind a DAC'07 simulator with
//! the scenario's predictive sleep — was wired up independently by the
//! simulator's unit tests, the Criterion bench fixtures and the CLI,
//! each with its own hard-coded capacity. One drifting copy would
//! silently bench a configuration nobody tests; every consumer now goes
//! through here.

use fcdpm_core::dpm::PredictiveSleep;
use fcdpm_core::policy::{
    AsapDpm, ConvDpm, FcDpm, FcOutputPolicy, OutputLevels, Quantized, WindowedAverage,
};
use fcdpm_core::FuelOptimizer;
use fcdpm_storage::IdealStorage;
use fcdpm_units::{Charge, CurrentRange};
use fcdpm_workload::Scenario;

use crate::{HybridSimulator, SimError, SimMetrics};

/// The paper's reference storage capacity in mA·min (Section 5: the 1 F
/// super-capacitor holds 100 mA·min at the 12 V bus). The single source
/// of truth — the runner's `JobSpec` default and the bench fixtures both
/// read it from here.
pub const REFERENCE_CAPACITY_MAMIN: f64 = 100.0;

/// The reference storage capacity as a typed charge.
#[must_use]
pub fn reference_capacity() -> Charge {
    Charge::from_milliamp_minutes(REFERENCE_CAPACITY_MAMIN)
}

/// The reference storage element: the ideal buffer at half charge, as
/// every Section-5 experiment starts it.
#[must_use]
pub fn reference_storage() -> IdealStorage {
    let capacity = reference_capacity();
    IdealStorage::new(capacity, capacity * 0.5)
}

/// The shipped FC output policies: the paper's Section-5 comparison
/// (Conv, ASAP, FC-DPM) plus the two repo extensions (the slot-free
/// windowed average and the quantized FC-DPM wrapper), wired as the
/// batch runner's defaults wire them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferencePolicy {
    /// The Conv-DPM baseline (no fuel-flow control).
    Conv,
    /// The ASAP-DPM baseline (load following + recharge trigger).
    Asap,
    /// The paper's FC-DPM.
    FcDpm,
    /// The slot-free windowed-average policy.
    Windowed,
    /// FC-DPM snapped to 12 uniform output levels.
    Quantized,
}

impl ReferencePolicy {
    /// Every shipped policy, paper table order first.
    pub const ALL: [Self; 5] = [
        Self::Conv,
        Self::Asap,
        Self::FcDpm,
        Self::Windowed,
        Self::Quantized,
    ];

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Conv => "Conv-DPM",
            Self::Asap => "ASAP-DPM",
            Self::FcDpm => "FC-DPM",
            Self::Windowed => "Windowed",
            Self::Quantized => "Quantized-12",
        }
    }

    /// Builds the policy wired exactly as the paper's experiments run it,
    /// against the reference capacity.
    #[must_use]
    pub fn build(self, scenario: &Scenario) -> Box<dyn FcOutputPolicy + Send> {
        let capacity = reference_capacity();
        let fcdpm = || {
            FcDpm::new(
                FuelOptimizer::dac07(),
                &scenario.device,
                capacity,
                scenario.sigma,
                scenario.active_current_estimate,
            )
        };
        match self {
            Self::Conv => Box::new(ConvDpm::dac07()),
            Self::Asap => Box::new(AsapDpm::dac07(capacity)),
            Self::FcDpm => Box::new(fcdpm()),
            Self::Windowed => Box::new(WindowedAverage::dac07()),
            Self::Quantized => Box::new(Quantized::new(
                fcdpm(),
                OutputLevels::uniform(CurrentRange::dac07(), 12),
            )),
        }
    }
}

/// Runs one reference policy on `scenario` through a DAC'07 simulator
/// with the reference storage and sleep wiring.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator (the paper's
/// configurations simulate cleanly).
pub fn run_reference(scenario: &Scenario, policy: ReferencePolicy) -> Result<SimMetrics, SimError> {
    run_reference_on(&HybridSimulator::dac07(&scenario.device), scenario, policy)
}

/// As [`run_reference`], but on a caller-configured simulator (a custom
/// control step, or [`HybridSimulator::without_coalescing`] for A/B
/// comparisons). The simulator should be built over `scenario.device`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_reference_on(
    sim: &HybridSimulator<'_>,
    scenario: &Scenario,
    policy: ReferencePolicy,
) -> Result<SimMetrics, SimError> {
    let mut storage = reference_storage();
    let mut sleep = PredictiveSleep::new(scenario.rho);
    let mut policy = policy.build(scenario);
    Ok(sim
        .run(&scenario.trace, &mut sleep, policy.as_mut(), &mut storage)?
        .metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_capacity_is_the_paper_value() {
        // 100 mA·min = 0.1 A × 60 s = 6 A·s.
        assert!((reference_capacity().amp_seconds() - 6.0).abs() < 1e-9);
        use fcdpm_storage::ChargeStorage;
        let storage = reference_storage();
        assert!((storage.soc() - reference_capacity() * 0.5).is_zero());
    }

    #[test]
    fn all_reference_policies_run() {
        let scenario = Scenario::experiment1();
        for policy in ReferencePolicy::ALL {
            let m = run_reference(&scenario, policy).expect("reference run succeeds");
            assert!(m.fuel.total().amp_seconds() > 0.0, "{}", policy.label());
            assert!(!policy.label().is_empty());
        }
    }

    #[test]
    fn reference_ordering_matches_the_paper() {
        let scenario = Scenario::experiment1();
        let conv = run_reference(&scenario, ReferencePolicy::Conv).expect("conv");
        let fc = run_reference(&scenario, ReferencePolicy::FcDpm).expect("fc");
        assert!(fc.fuel.total() < conv.fuel.total());
    }
}
