//! The hybrid-source co-simulator.

use fcdpm_core::dpm::SleepPolicy;
use fcdpm_core::policy::{
    ActiveStart, FcOutputPolicy, OperatingConditions, PolicyPhase, SegmentPlan, SlotEnd, SlotStart,
};
use fcdpm_device::{DeviceSpec, SlotTimeline};
use fcdpm_faults::{FaultSchedule, FaultState};
use fcdpm_fuelcell::LinearEfficiency;
use fcdpm_storage::{ChargeStorage, StorageFlow};
use fcdpm_units::{Amps, Charge, CurrentRange, Seconds};
use fcdpm_workload::Trace;

use crate::{FuelFlowModel, ProfileRecorder, SimError, SimMetrics};

/// Residual floor for the chunk loop, as a fraction of the control step:
/// `remaining -= dt` accumulates floating-point error, and without a
/// floor a segment whose duration is not an exact multiple of the step
/// can leave a ~1e-16 s ghost chunk that hits the recorder and skews the
/// work counters. A final chunk is widened to absorb any residual below
/// this fraction of the step.
pub(crate) const RESIDUAL_FLOOR_FRACTION: f64 = 1e-9;

/// Wall-clock duration of the brownout inside one integration step.
///
/// Within a step the storage discharges at a constant rate, so the
/// browned-out portion is the deficit's share of the total demanded
/// charge. This makes the sum invariant under the step size and under
/// chunk coalescing, unlike a chunk count.
pub(crate) fn deficit_time_of(flow: &StorageFlow, dt: Seconds) -> Seconds {
    if flow.deficit.is_zero() {
        return Seconds::ZERO;
    }
    let demanded = flow.deficit + flow.discharged;
    if demanded.is_zero() {
        dt
    } else {
        dt * (flow.deficit / demanded)
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Aggregate metrics of the run.
    pub metrics: SimMetrics,
}

/// Co-simulates a device trace against a DPM policy, an FC output policy
/// and a charge-storage element (see the [crate docs](crate) for the
/// wiring diagram).
///
/// The simulator integrates exactly: every segment of the device timeline
/// is piecewise-constant, and immediately following segments with the
/// same phase and load merge into one constant-load *stretch*. The FC
/// policy plans each stretch through [`FcOutputPolicy::begin_segment`]:
/// a [`SegmentPlan::Steady`] phase integrates to the stretch (or fault
/// span) end in closed form, a [`SegmentPlan::UntilSocCrossing`] phase is
/// split analytically at the projected state-of-charge crossing
/// ([`ChargeStorage::time_to_soc`]) and re-planned — this is what lets
/// ASAP-DPM's recharge trigger fire "as soon as possible" mid-segment
/// without stepping — and only a [`SegmentPlan::PerChunk`] plan falls
/// back to consulting [`FcOutputPolicy::segment_current`] every *control
/// chunk* (default 0.5 s).
///
/// [`Self::without_coalescing`] integrates the identical plan sequence
/// chunk by chunk for A/B comparison: the physics agree up to
/// floating-point accumulation order, only the work counters differ.
#[derive(Debug)]
pub struct HybridSimulator<'a> {
    device: &'a DeviceSpec,
    fuel_model: Box<dyn FuelFlowModel + Send + Sync>,
    range: CurrentRange,
    control_step: Seconds,
    charger_efficiency: f64,
    discharger_efficiency: f64,
    coalescing: bool,
    faults: Option<FaultSchedule>,
}

impl<'a> HybridSimulator<'a> {
    /// Creates a simulator over an explicit fuel-flow model and
    /// load-following range.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `control_step` is not
    /// positive.
    pub fn new(
        device: &'a DeviceSpec,
        fuel_model: Box<dyn FuelFlowModel + Send + Sync>,
        range: CurrentRange,
        control_step: Seconds,
    ) -> Result<Self, SimError> {
        if control_step <= Seconds::ZERO || !control_step.is_finite() {
            return Err(SimError::InvalidConfig {
                name: "control_step",
            });
        }
        Ok(Self {
            device,
            fuel_model,
            range,
            control_step,
            charger_efficiency: 1.0,
            discharger_efficiency: 1.0,
            coalescing: true,
            faults: None,
        })
    }

    /// Disables the chunk-coalescing fast path, forcing per-chunk
    /// integration of every plan phase. The plan sequence — merge scan,
    /// `begin_segment` consultations, crossing splits — is identical to
    /// the fast path; only the integration inside each phase is chunked.
    /// Intended for A/B comparison (the cross-path determinism suite and
    /// the bench harness); the physics results agree either way, only
    /// the work counters differ.
    #[must_use]
    pub fn without_coalescing(mut self) -> Self {
        self.coalescing = false;
        self
    }

    /// Whether the chunk-coalescing fast path is enabled (it is by
    /// default).
    #[must_use]
    pub fn coalescing_enabled(&self) -> bool {
        self.coalescing
    }

    /// Attaches a fault schedule: the events fire at their scheduled
    /// simulated times during [`run`](Self::run), reshaping the physics
    /// mid-run (efficiency fade, fuel starvation, storage fade and
    /// leakage, predictor dropout/noise). An empty schedule leaves every
    /// metric bit-identical to running without one. Profile runs
    /// ([`run_profile`](Self::run_profile)) ignore the schedule — fault
    /// injection is defined on the slot-structured path only.
    ///
    /// Validate the schedule first with [`FaultSchedule::validate`];
    /// invalid events are applied as-is.
    #[must_use]
    pub fn with_faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// The attached fault schedule, if any.
    #[must_use]
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// The operating conditions as a health-aware policy wrapper should
    /// see them: effective vs nominal range, predictor health, and state
    /// of charge as a fraction of the *effective* (fade-reduced)
    /// capacity.
    fn conditions(&self, fs: &FaultState, storage: &dyn ChargeStorage) -> OperatingConditions {
        let cap = storage.capacity() * fs.capacity_scale();
        let soc_fraction = if cap.is_zero() {
            0.0
        } else {
            storage.soc() / cap
        };
        OperatingConditions {
            effective_range: fs.effective_range(self.range),
            base_range: self.range,
            predictor_ok: fs.predictor_ok(),
            soc_fraction,
        }
    }

    /// Enforces a storage-capacity fade after an integration step: any
    /// charge above the faded capacity is routed to the bleeder by-pass,
    /// so the charge-conservation identity (`delivered = load + Δsoc +
    /// bled − deficit`) survives the fault.
    fn apply_capacity_fade(
        fs: &FaultState,
        storage: &mut dyn ChargeStorage,
        flow: &mut StorageFlow,
    ) {
        let scale = fs.capacity_scale();
        if scale >= 1.0 {
            return;
        }
        let cap = storage.capacity() * scale;
        let excess = storage.soc() - cap;
        if excess > Charge::ZERO {
            storage.set_soc(cap);
            flow.bled += excess;
        }
    }

    /// Models the charger/discharger blocks of the paper's Figure 1 as
    /// lossy paths between the bus and the storage element: only
    /// `charger` of each ampere pushed toward storage arrives, and
    /// `1/discharger` amperes must be drawn per ampere delivered. The
    /// default (both 1.0) is the paper's lossless assumption.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if either efficiency is
    /// outside `(0, 1]`.
    pub fn with_buffer_path_efficiency(
        mut self,
        charger: f64,
        discharger: f64,
    ) -> Result<Self, SimError> {
        if !(charger > 0.0 && charger <= 1.0) {
            return Err(SimError::InvalidConfig {
                name: "charger_efficiency",
            });
        }
        if !(discharger > 0.0 && discharger <= 1.0) {
            return Err(SimError::InvalidConfig {
                name: "discharger_efficiency",
            });
        }
        self.charger_efficiency = charger;
        self.discharger_efficiency = discharger;
        Ok(self)
    }

    /// Applies the Figure-1 charger/discharger losses to the bus-side
    /// imbalance `i_f − load`, returning the storage-side net current.
    pub(crate) fn buffer_net(&self, imbalance: fcdpm_units::Amps) -> fcdpm_units::Amps {
        if imbalance.is_negative() {
            imbalance / self.discharger_efficiency
        } else {
            imbalance * self.charger_efficiency
        }
    }

    /// The paper's configuration: linear efficiency model
    /// (α = 0.45, β = 0.13), load-following range `[0.1 A, 1.2 A]`,
    /// 0.5 s control chunks.
    #[must_use]
    pub fn dac07(device: &'a DeviceSpec) -> Self {
        Self::new(
            device,
            Box::new(LinearEfficiency::dac07()),
            CurrentRange::dac07(),
            Seconds::new(0.5),
        )
        // Invariant: 0.5 s is positive and finite, so `new` cannot
        // reject it. fcdpm-lint: allow(panic-policy)
        .expect("default control step is valid")
    }

    /// The device under simulation.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        self.device
    }

    /// The load-following range enforced on policy outputs.
    #[must_use]
    pub fn range(&self) -> CurrentRange {
        self.range
    }

    /// The control-chunk duration at which policies are re-consulted.
    #[must_use]
    pub fn control_step(&self) -> Seconds {
        self.control_step
    }

    /// The fuel-flow model integrating stack current.
    pub(crate) fn fuel_model(&self) -> &(dyn crate::FuelFlowModel + Send + Sync) {
        self.fuel_model.as_ref()
    }

    /// Integrates one whole segment in closed form under a steady
    /// setpoint: one fuel-model evaluation for the whole duration and one
    /// [`ChargeStorage::step_coalesced`] call that splits analytically at
    /// the saturation/depletion boundary.
    pub(crate) fn integrate_coalesced(
        &self,
        load: Amps,
        demanded: Amps,
        duration: Seconds,
        storage: &mut dyn ChargeStorage,
        metrics: &mut SimMetrics,
        faults: Option<&FaultState>,
    ) -> Result<(), SimError> {
        let range = match faults {
            Some(fs) => fs.effective_range(self.range),
            None => self.range,
        };
        let i_f = range.clamp(demanded);
        let mut i_fc = self.fuel_model.stack_current(i_f)?;
        if let Some(fs) = faults {
            let derate = fs.stack_derate(i_f);
            if derate != 1.0 {
                i_fc = i_fc * derate;
            }
        }
        metrics.fuel.consume(i_fc, duration);
        metrics.delivered_charge += i_f * duration;
        metrics.load_charge += load * duration;
        let mut net = self.buffer_net(i_f - load);
        if let Some(fs) = faults {
            if !fs.leak().is_zero() {
                net -= fs.leak();
            }
        }
        let mut flow = storage.step_coalesced(net, duration);
        if let Some(fs) = faults {
            Self::apply_capacity_fade(fs, storage, &mut flow);
        }
        metrics.bled_charge += flow.bled;
        metrics.deficit_charge += flow.deficit;
        metrics.deficit_time += deficit_time_of(&flow, duration);
        metrics.chunks_coalesced += (duration / self.control_step).ceil() as u64;
        Ok(())
    }

    /// Integrates one control chunk under an already-decided setpoint,
    /// applying any active faults (range shrink, stack derate, leak,
    /// capacity fade). Returns the clamped output and stack currents for
    /// the recorder.
    fn integrate_chunk(
        &self,
        load: Amps,
        demanded: Amps,
        dt: Seconds,
        storage: &mut dyn ChargeStorage,
        metrics: &mut SimMetrics,
        faults: Option<&FaultState>,
    ) -> Result<(Amps, Amps), SimError> {
        let range = match faults {
            Some(fs) => fs.effective_range(self.range),
            None => self.range,
        };
        let i_f = range.clamp(demanded);
        let mut i_fc = self.fuel_model.stack_current(i_f)?;
        if let Some(fs) = faults {
            let derate = fs.stack_derate(i_f);
            if derate != 1.0 {
                i_fc = i_fc * derate;
            }
        }
        metrics.fuel.consume(i_fc, dt);
        metrics.delivered_charge += i_f * dt;
        metrics.load_charge += load * dt;
        let mut net = self.buffer_net(i_f - load);
        if let Some(fs) = faults {
            if !fs.leak().is_zero() {
                net -= fs.leak();
            }
        }
        let mut flow = storage.step(net, dt);
        if let Some(fs) = faults {
            Self::apply_capacity_fade(fs, storage, &mut flow);
        }
        metrics.bled_charge += flow.bled;
        metrics.deficit_charge += flow.deficit;
        metrics.deficit_time += deficit_time_of(&flow, dt);
        metrics.chunks_stepped += 1;
        Ok((i_f, i_fc))
    }

    /// The storage-side net current a plan setpoint produces under the
    /// current fault state — the same clamp/loss/leak pipeline the
    /// integrators apply — used to project SoC-threshold crossings.
    fn plan_net(&self, demanded: Amps, load: Amps, faults: Option<&FaultState>) -> Amps {
        let range = match faults {
            Some(fs) => fs.effective_range(self.range),
            None => self.range,
        };
        let i_f = range.clamp(demanded);
        let mut net = self.buffer_net(i_f - load);
        if let Some(fs) = faults {
            if !fs.leak().is_zero() {
                net -= fs.leak();
            }
        }
        net
    }

    /// Integrates one fault-free span of a constant-load stretch under
    /// the policy's segment plans. [`FcOutputPolicy::begin_segment`] is
    /// consulted once per plan phase: steady plans run to the span end,
    /// crossing plans split analytically at the projected SoC threshold
    /// and re-plan from the policy's advanced trigger state, and a
    /// [`SegmentPlan::PerChunk`] plan falls back to consulting
    /// [`FcOutputPolicy::segment_current`] every control chunk.
    #[allow(clippy::too_many_arguments)]
    fn integrate_span(
        &self,
        phase: PolicyPhase,
        load: Amps,
        span: Seconds,
        time: &mut Seconds,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
        metrics: &mut SimMetrics,
        faults: Option<&FaultState>,
        recorder: &mut Option<&mut ProfileRecorder>,
    ) -> Result<(), SimError> {
        let residual_floor = self.control_step * RESIDUAL_FLOOR_FRACTION;
        let mut left = span;
        while left > Seconds::ZERO {
            let plan = policy.begin_segment(phase, load, storage.soc(), left);
            metrics.policy_consultations += 1;
            let (demanded, mut phase_len) = match plan {
                SegmentPlan::PerChunk => {
                    self.integrate_unplanned(
                        phase, load, left, time, policy, storage, metrics, faults, recorder,
                    )?;
                    return Ok(());
                }
                SegmentPlan::Steady(i) => (i, left),
                SegmentPlan::UntilSocCrossing {
                    current, threshold, ..
                } => {
                    let net = self.plan_net(current, load, faults);
                    match storage.time_to_soc(net, threshold, left) {
                        // Already on the threshold (within residual):
                        // advance one control chunk at the planned
                        // setpoint so the next re-plan sees the strict
                        // side and the loop cannot stall.
                        Some(t) if t <= residual_floor => (current, self.control_step.min(left)),
                        // Overshoot the crossing by the residual floor
                        // so the landing side of the threshold is the
                        // same whichever integration mode accumulated
                        // the rounding error.
                        Some(t) => (current, (t + residual_floor).min(left)),
                        None => (current, left),
                    }
                }
            };
            if left - phase_len <= residual_floor {
                phase_len = left;
            }
            self.integrate_phase(
                load, demanded, phase_len, time, storage, metrics, faults, recorder,
            )?;
            left -= phase_len;
        }
        Ok(())
    }

    /// Integrates one plan phase: in closed form on the fast path, chunk
    /// by chunk (feeding the recorder) when coalescing is off or the
    /// recorder is still inside its horizon. Both shapes drive the same
    /// setpoint over the same duration, so they agree to float residual.
    #[allow(clippy::too_many_arguments)]
    fn integrate_phase(
        &self,
        load: Amps,
        demanded: Amps,
        duration: Seconds,
        time: &mut Seconds,
        storage: &mut dyn ChargeStorage,
        metrics: &mut SimMetrics,
        faults: Option<&FaultState>,
        recorder: &mut Option<&mut ProfileRecorder>,
    ) -> Result<(), SimError> {
        let recording = recorder.as_deref().is_some_and(ProfileRecorder::active);
        if self.coalescing && !recording {
            self.integrate_coalesced(load, demanded, duration, storage, metrics, faults)?;
            *time += duration;
            return Ok(());
        }
        let residual_floor = self.control_step * RESIDUAL_FLOOR_FRACTION;
        let mut chunk_remaining = duration;
        while chunk_remaining > Seconds::ZERO {
            let mut dt = chunk_remaining.min(self.control_step);
            if chunk_remaining - dt <= residual_floor {
                // Widen the final chunk to absorb the floating-point
                // residual of `chunk_remaining -= dt`.
                dt = chunk_remaining;
            }
            let (i_f, i_fc) = self.integrate_chunk(load, demanded, dt, storage, metrics, faults)?;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record_chunk(*time, dt, load, i_f, i_fc, storage.soc());
            }
            *time += dt;
            chunk_remaining -= dt;
        }
        Ok(())
    }

    /// Per-chunk fallback for policies that cannot close a plan over the
    /// span: [`FcOutputPolicy::segment_current`] is consulted every
    /// control chunk for the rest of the span.
    #[allow(clippy::too_many_arguments)]
    fn integrate_unplanned(
        &self,
        phase: PolicyPhase,
        load: Amps,
        span: Seconds,
        time: &mut Seconds,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
        metrics: &mut SimMetrics,
        faults: Option<&FaultState>,
        recorder: &mut Option<&mut ProfileRecorder>,
    ) -> Result<(), SimError> {
        let residual_floor = self.control_step * RESIDUAL_FLOOR_FRACTION;
        let mut chunk_remaining = span;
        while chunk_remaining > Seconds::ZERO {
            let mut dt = chunk_remaining.min(self.control_step);
            if chunk_remaining - dt <= residual_floor {
                dt = chunk_remaining;
            }
            let demanded = policy.segment_current(phase, load, storage.soc());
            metrics.policy_consultations += 1;
            let (i_f, i_fc) = self.integrate_chunk(load, demanded, dt, storage, metrics, faults)?;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record_chunk(*time, dt, load, i_f, i_fc, storage.soc());
            }
            *time += dt;
            chunk_remaining -= dt;
        }
        Ok(())
    }

    /// Runs `trace` and returns the aggregate metrics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the fuel model rejects a demanded current
    /// (cannot happen with range-respecting models such as the defaults).
    pub fn run(
        &self,
        trace: &Trace,
        sleep: &mut dyn SleepPolicy,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
    ) -> Result<SimResult, SimError> {
        self.run_internal(trace, sleep, policy, storage, None)
    }

    /// Runs `trace` while sampling the current profile into `recorder`
    /// (the data behind Figure 7).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_recorded(
        &self,
        trace: &Trace,
        sleep: &mut dyn SleepPolicy,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
        recorder: &mut ProfileRecorder,
    ) -> Result<SimResult, SimError> {
        self.run_internal(trace, sleep, policy, storage, Some(recorder))
    }

    fn run_internal(
        &self,
        trace: &Trace,
        sleep: &mut dyn SleepPolicy,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
        mut recorder: Option<&mut ProfileRecorder>,
    ) -> Result<SimResult, SimError> {
        let t_be = self.device.break_even_time();
        let mut metrics = SimMetrics::new();
        let mut time = Seconds::ZERO;
        let mut faults = self.faults.as_ref().map(FaultState::new);

        for (index, slot) in trace.slots().iter().enumerate() {
            let decision = sleep.decide(t_be);
            let i_active = slot.active_current(self.device.bus_voltage());
            let mut predicted_idle = decision.predicted_idle;
            if let Some(fs) = faults.as_mut() {
                metrics.faults_applied += fs.advance_to(time);
                policy.observe_conditions(&self.conditions(fs, storage));
                predicted_idle = fs.perturb_prediction(index, predicted_idle);
            }
            policy.begin_slot(&SlotStart {
                index,
                directive: decision.directive,
                predicted_idle,
                soc: storage.soc(),
            });
            let timeline = SlotTimeline::build_with_directive(
                self.device,
                slot.idle,
                decision.directive,
                slot.active,
                i_active,
            );
            if timeline.slept() {
                metrics.sleeps += 1;
            }
            metrics.task_latency += timeline.task_latency();

            // Active-phase totals, known on task arrival.
            let mut active_duration = Seconds::ZERO;
            let mut active_charge = Charge::ZERO;
            for seg in timeline.segments() {
                if !seg.kind.is_idle_phase() {
                    active_duration += seg.duration;
                    active_charge += seg.charge();
                }
            }

            let mut active_started = false;
            let segments = timeline.segments();
            let mut si = 0;
            while si < segments.len() {
                let seg = &segments[si];
                let phase = if seg.kind.is_idle_phase() {
                    PolicyPhase::Idle
                } else {
                    PolicyPhase::Active
                };
                if phase == PolicyPhase::Active && !active_started {
                    active_started = true;
                    policy.begin_active(&ActiveStart {
                        duration: active_duration,
                        charge: active_charge,
                        soc: storage.soc(),
                    });
                }
                if seg.duration <= Seconds::ZERO {
                    si += 1;
                    continue;
                }

                if let Some(fs) = faults.as_mut() {
                    metrics.faults_applied += fs.advance_to(time);
                    policy.observe_conditions(&self.conditions(fs, storage));
                }

                // Immediately following segments in the same phase at
                // the same load are indistinguishable to the policy, so
                // they merge into one constant-load stretch and the
                // policy plans the whole stretch at once. Skipped while
                // the recorder still wants samples so figure outputs
                // keep their original segment boundaries.
                let record_pending = recorder.as_deref().is_some_and(ProfileRecorder::active);
                let mut duration = seg.duration;
                if !record_pending {
                    while let Some(nxt) = segments.get(si + 1) {
                        if nxt.kind.is_idle_phase() == seg.kind.is_idle_phase()
                            && nxt.load == seg.load
                        {
                            duration += nxt.duration;
                            si += 1;
                        } else {
                            break;
                        }
                    }
                }

                // Integrate the stretch span by span: a span ends at the
                // stretch end or at the next fault boundary, whichever
                // comes first, so no fault edge falls inside a
                // closed-form integration (and the per-chunk path sees
                // the same span edges as the fast path).
                let residual_floor = self.control_step * RESIDUAL_FLOOR_FRACTION;
                let mut remaining = duration;
                let mut first_span = true;
                while remaining > Seconds::ZERO {
                    if !first_span {
                        if let Some(fs) = faults.as_mut() {
                            metrics.faults_applied += fs.advance_to(time);
                            policy.observe_conditions(&self.conditions(fs, storage));
                        }
                    }
                    // The two integration modes accumulate `time` through
                    // different float additions, so a fault boundary can
                    // land a few ulps after one mode's clock and dead-on
                    // the other's. A boundary within the residual floor is
                    // "now": apply it before planning the span instead of
                    // integrating a degenerate sliver in one mode only.
                    if let Some(fs) = faults.as_mut() {
                        while let Some(b) = fs.next_boundary(time) {
                            if b - time > residual_floor {
                                break;
                            }
                            metrics.faults_applied += fs.advance_to(b);
                            policy.observe_conditions(&self.conditions(fs, storage));
                        }
                    }
                    let mut span = match faults.as_ref().and_then(|fs| fs.next_boundary(time)) {
                        Some(b) if b - time < remaining => b - time,
                        _ => remaining,
                    };
                    if remaining - span <= residual_floor {
                        // Widen to absorb a boundary landing within
                        // floating-point residual of the stretch end.
                        span = remaining;
                    }
                    let deficit_before = metrics.deficit_time;
                    self.integrate_span(
                        phase,
                        seg.load,
                        span,
                        &mut time,
                        policy,
                        storage,
                        &mut metrics,
                        faults.as_ref(),
                        &mut recorder,
                    )?;
                    if let Some(fs) = faults.as_ref() {
                        if fs.any_active() {
                            metrics.fault_deficit_time += metrics.deficit_time - deficit_before;
                        }
                        if policy.resilience().is_some_and(|s| s.degraded) {
                            metrics.time_in_fallback += span;
                        }
                    }
                    remaining -= span;
                    first_span = false;
                }
                si += 1;
            }

            sleep.observe_idle(slot.idle);
            policy.end_slot(&SlotEnd {
                t_idle: slot.idle,
                t_active: slot.active,
                i_active,
                soc: storage.soc(),
            });
            metrics.slots += 1;
        }

        if let Some(status) = policy.resilience() {
            metrics.degradations = status.degradations;
        }
        metrics.final_soc = storage.soc();
        Ok(SimResult { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcdpm_core::dpm::PredictiveSleep;
    use fcdpm_core::policy::{AsapDpm, ConvDpm, FcDpm};
    use fcdpm_core::FuelOptimizer;
    use fcdpm_storage::IdealStorage;
    use fcdpm_units::Amps;
    use fcdpm_workload::Scenario;

    fn run_policy(
        scenario: &Scenario,
        policy: &mut dyn FcOutputPolicy,
        capacity: Charge,
    ) -> SimMetrics {
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::new(capacity, capacity * 0.5);
        let mut sleep = PredictiveSleep::new(scenario.rho);
        sim.run(&scenario.trace, &mut sleep, policy, &mut storage)
            .unwrap()
            .metrics
    }

    fn fcdpm_policy(scenario: &Scenario, capacity: Charge) -> FcDpm {
        FcDpm::new(
            FuelOptimizer::dac07(),
            &scenario.device,
            capacity,
            scenario.sigma,
            scenario.active_current_estimate,
        )
    }

    #[test]
    fn policy_ordering_on_camcorder() {
        // The paper's Table 2 ordering: FC-DPM < ASAP-DPM < Conv-DPM.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let conv = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        let asap = run_policy(&scenario, &mut AsapDpm::dac07(cap), cap);
        let mut fc = fcdpm_policy(&scenario, cap);
        let fcdpm = run_policy(&scenario, &mut fc, cap);
        let asap_norm = asap.normalized_fuel(&conv);
        let fc_norm = fcdpm.normalized_fuel(&conv);
        assert!(
            fc_norm < asap_norm && asap_norm < 1.0,
            "ordering violated: fc {fc_norm:.3}, asap {asap_norm:.3}"
        );
        // Band check against Table 2 (30.8 % and 40.8 %).
        assert!((0.25..0.40).contains(&fc_norm), "fc {fc_norm:.3}");
        assert!((0.30..0.55).contains(&asap_norm), "asap {asap_norm:.3}");
    }

    #[test]
    fn conv_fuel_matches_closed_form() {
        let scenario = Scenario::experiment1();
        let cap = Charge::new(1e9); // effectively infinite: no bleed concern
        let conv = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        let i_fc = LinearEfficiency::dac07()
            .stack_current(Amps::new(1.2))
            .unwrap();
        let expect = i_fc.amps() * conv.duration().seconds();
        assert!(
            (conv.fuel.total().amp_seconds() - expect).abs() < 1e-6,
            "fuel {} vs closed form {}",
            conv.fuel.total().amp_seconds(),
            expect
        );
    }

    #[test]
    fn charge_conservation() {
        // delivered = load + Δsoc + bled − deficit, exactly.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        {
            let policy = &mut ConvDpm::dac07() as &mut dyn FcOutputPolicy;
            let sim = HybridSimulator::dac07(&scenario.device);
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let initial = storage.soc();
            let mut sleep = PredictiveSleep::new(scenario.rho);
            let m = sim
                .run(&scenario.trace, &mut sleep, policy, &mut storage)
                .unwrap()
                .metrics;
            let lhs = m.delivered_charge.amp_seconds();
            let rhs = m.load_charge.amp_seconds()
                + (m.final_soc - initial).amp_seconds()
                + m.bled_charge.amp_seconds()
                - m.deficit_charge.amp_seconds();
            assert!(
                (lhs - rhs).abs() < 1e-6,
                "conservation violated: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn sleeps_most_slots_on_camcorder() {
        // Idle 8–20 s always exceeds T_be = 1 s; only the cold first slot
        // stays awake.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let m = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        assert_eq!(m.sleeps, m.slots - 1);
    }

    #[test]
    fn profile_recording() {
        let scenario = Scenario::experiment1();
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::dac07_supercap();
        let mut sleep = PredictiveSleep::new(scenario.rho);
        let mut rec = ProfileRecorder::new(Seconds::new(0.5), Seconds::new(300.0));
        let mut policy = ConvDpm::dac07();
        sim.run_recorded(
            &scenario.trace,
            &mut sleep,
            &mut policy,
            &mut storage,
            &mut rec,
        )
        .unwrap();
        // 300 s at 0.5 s sampling → 601 samples.
        assert_eq!(rec.samples().len(), 601);
        assert!(rec.samples().iter().all(|s| s.i_f == Amps::new(1.2)));
    }

    #[test]
    fn no_brownout_with_adequate_storage_fcdpm() {
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let mut fc = fcdpm_policy(&scenario, cap);
        let m = run_policy(&scenario, &mut fc, cap);
        assert!(
            m.brownout_fraction() < 0.01,
            "brownouts: {}",
            m.brownout_fraction()
        );
    }

    #[test]
    fn experiment2_ordering() {
        let scenario = Scenario::experiment2();
        let cap = Charge::from_milliamp_minutes(100.0);
        let conv = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        let asap = run_policy(&scenario, &mut AsapDpm::dac07(cap), cap);
        let mut fc = fcdpm_policy(&scenario, cap);
        let fcdpm = run_policy(&scenario, &mut fc, cap);
        let asap_norm = asap.normalized_fuel(&conv);
        let fc_norm = fcdpm.normalized_fuel(&conv);
        assert!(
            fc_norm < asap_norm && asap_norm < 1.0,
            "ordering violated: fc {fc_norm:.3}, asap {asap_norm:.3}"
        );
        // Table 3 reports 41.5 % and 49.1 %; our reconstruction lands
        // lower in absolute terms (see EXPERIMENTS.md) but preserves the
        // ordering and the FC-vs-ASAP gap, which these bands pin down.
        assert!((0.22..0.55).contains(&fc_norm), "fc {fc_norm:.3}");
        assert!((0.28..0.65).contains(&asap_norm), "asap {asap_norm:.3}");
    }

    #[test]
    fn lossy_buffer_paths_cost_fuel() {
        // Figure-1 charger/discharger losses: the same FC-DPM policy must
        // burn at least as much fuel when the buffer paths are lossy.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let run_with = |charger: f64, discharger: f64| {
            let sim = HybridSimulator::dac07(&scenario.device)
                .with_buffer_path_efficiency(charger, discharger)
                .unwrap();
            let mut policy = FcDpm::new(
                FuelOptimizer::dac07(),
                &scenario.device,
                cap,
                scenario.sigma,
                scenario.active_current_estimate,
            );
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            sim.run(&scenario.trace, &mut sleep, &mut policy, &mut storage)
                .unwrap()
                .metrics
        };
        let lossless = run_with(1.0, 1.0);
        let lossy = run_with(0.85, 0.85);
        assert!(
            lossy.fuel.total() >= lossless.fuel.total(),
            "lossy {} < lossless {}",
            lossy.fuel.total(),
            lossless.fuel.total()
        );
    }

    #[test]
    fn buffer_path_efficiency_validated() {
        let scenario = Scenario::experiment1();
        assert!(HybridSimulator::dac07(&scenario.device)
            .with_buffer_path_efficiency(0.0, 1.0)
            .is_err());
        assert!(HybridSimulator::dac07(&scenario.device)
            .with_buffer_path_efficiency(1.0, 1.5)
            .is_err());
        assert!(HybridSimulator::dac07(&scenario.device)
            .with_buffer_path_efficiency(0.9, 0.9)
            .is_ok());
    }

    #[test]
    fn invalid_control_step_rejected() {
        let scenario = Scenario::experiment1();
        let err = HybridSimulator::new(
            &scenario.device,
            Box::new(LinearEfficiency::dac07()),
            CurrentRange::dac07(),
            Seconds::ZERO,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidConfig {
                name: "control_step"
            }
        );
    }

    #[test]
    fn fast_path_coalesces_steady_policies() {
        // Conv-DPM plans a steady setpoint for every segment, so the
        // whole run integrates without a single per-chunk step.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let m = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        assert_eq!(m.chunks_stepped, 0);
        assert!(m.chunks_coalesced > 0);
        assert!(m.policy_consultations > 0);
        // ASAP-DPM plans piecewise (follow-load / recharge phases split
        // at the analytic SoC crossing): still no per-chunk stepping.
        let m = run_policy(&scenario, &mut AsapDpm::dac07(cap), cap);
        assert_eq!(m.chunks_stepped, 0);
        assert!(m.chunks_coalesced > 0);
    }

    #[test]
    fn without_coalescing_reproduces_fast_path_physics() {
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let run_with = |coalescing: bool| {
            let mut sim = HybridSimulator::dac07(&scenario.device);
            if !coalescing {
                sim = sim.without_coalescing();
            }
            let mut policy = ConvDpm::dac07();
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            sim.run(&scenario.trace, &mut sleep, &mut policy, &mut storage)
                .unwrap()
                .metrics
        };
        let fast = run_with(true);
        let slow = run_with(false);
        assert!(slow.chunks_coalesced == 0 && fast.chunks_stepped == 0);
        assert_eq!(fast.slots, slow.slots);
        assert_eq!(fast.sleeps, slow.sleeps);
        assert!(fast.fuel.total().approx_eq(slow.fuel.total(), 1e-6));
        assert!(fast.delivered_charge.approx_eq(slow.delivered_charge, 1e-6));
        assert!(fast.final_soc.approx_eq(slow.final_soc, 1e-6));
        assert!((fast.deficit_time - slow.deficit_time).abs() < Seconds::new(1e-6));
    }

    #[test]
    fn recorder_keeps_per_chunk_resolution_until_horizon() {
        // With the recorder attached, segments inside the horizon still
        // step per chunk (so Figure-7 outputs are unchanged); once the
        // horizon passes, the fast path takes over.
        let scenario = Scenario::experiment1();
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::dac07_supercap();
        let mut sleep = PredictiveSleep::new(scenario.rho);
        let mut rec = ProfileRecorder::new(Seconds::new(0.5), Seconds::new(300.0));
        let mut policy = ConvDpm::dac07();
        let m = sim
            .run_recorded(
                &scenario.trace,
                &mut sleep,
                &mut policy,
                &mut storage,
                &mut rec,
            )
            .unwrap()
            .metrics;
        assert_eq!(rec.samples().len(), 601);
        assert!(m.chunks_stepped > 0, "horizon segments must step");
        assert!(
            m.chunks_coalesced > 0,
            "post-horizon segments must coalesce"
        );
    }

    #[test]
    fn cross_segment_merge_coalesces_equal_load_neighbors() {
        // Satellite pin for cross-segment coalescing on a sleep-heavy
        // trace. Under an always-sleep DPM policy every camcorder slot
        // plays six segments — PowerDown, Sleep, WakeUp, StartUp, Run,
        // ShutDown — of which the last three share the active load, so a
        // steady policy is consulted exactly four times per slot (the
        // active trio merges into one closed-form stretch).
        use fcdpm_core::dpm::SleepDecision;
        use fcdpm_device::SleepDirective;

        #[derive(Debug)]
        struct AlwaysSleep;
        impl SleepPolicy for AlwaysSleep {
            fn decide(&mut self, _t_be: Seconds) -> SleepDecision {
                SleepDecision {
                    directive: SleepDirective::SleepImmediately,
                    predicted_idle: Some(Seconds::new(10.0)),
                }
            }
            fn observe_idle(&mut self, _actual: Seconds) {}
        }

        let scenario = Scenario::experiment1();
        let sim = HybridSimulator::dac07(&scenario.device);
        let cap = Charge::from_milliamp_minutes(100.0);
        let mut storage = IdealStorage::new(cap, cap * 0.5);
        let mut policy = ConvDpm::dac07();
        let m = sim
            .run(&scenario.trace, &mut AlwaysSleep, &mut policy, &mut storage)
            .unwrap()
            .metrics;
        assert_eq!(m.sleeps, m.slots);
        assert_eq!(m.chunks_stepped, 0);
        assert_eq!(m.policy_consultations as usize, 4 * m.slots);
    }

    #[test]
    fn merged_run_reproduces_per_chunk_physics() {
        // The merge scan must not change the physics, only the work
        // counters: same camcorder run with and without the fast path.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let run_with = |coalescing: bool| {
            let mut sim = HybridSimulator::dac07(&scenario.device);
            if !coalescing {
                sim = sim.without_coalescing();
            }
            let mut policy = ConvDpm::dac07();
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            sim.run(&scenario.trace, &mut sleep, &mut policy, &mut storage)
                .unwrap()
                .metrics
        };
        let fast = run_with(true);
        let slow = run_with(false);
        // Both modes drive the identical plan sequence — the merge scan
        // and per-stretch `begin_segment` consultations are shared; only
        // the integration inside each plan phase differs.
        assert_eq!(fast.policy_consultations, slow.policy_consultations);
        assert!(slow.chunks_stepped > 0 && fast.chunks_stepped == 0);
        assert!(fast.fuel.total().approx_eq(slow.fuel.total(), 1e-6));
        assert!(fast.final_soc.approx_eq(slow.final_soc, 1e-6));
    }

    #[test]
    fn empty_fault_schedule_is_bit_identical() {
        use fcdpm_faults::FaultSchedule;
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let run_with = |faults: Option<FaultSchedule>| {
            let mut sim = HybridSimulator::dac07(&scenario.device);
            if let Some(schedule) = faults {
                sim = sim.with_faults(schedule);
            }
            let mut policy = fcdpm_policy(&scenario, cap);
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            sim.run(&scenario.trace, &mut sleep, &mut policy, &mut storage)
                .unwrap()
                .metrics
        };
        let bare = run_with(None);
        let empty = run_with(Some(FaultSchedule::none(0xDAC0_2007)));
        // Bit-identical, work counters included: the no-fault code path
        // must execute the exact same float operations.
        assert_eq!(bare, empty);
        assert_eq!(empty.faults_applied, 0);
        assert_eq!(empty.degradations, 0);
        assert_eq!(empty.time_in_fallback, Seconds::ZERO);
        assert_eq!(empty.fault_deficit_time, Seconds::ZERO);
    }

    #[test]
    fn starvation_window_caps_delivery_and_attributes_deficit() {
        use fcdpm_faults::{FaultEvent, FaultKind, FaultSchedule, FuelStarvation};
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let schedule = FaultSchedule {
            seed: 1,
            events: vec![FaultEvent {
                at_s: 50.0,
                kind: FaultKind::FuelStarvation(FuelStarvation {
                    until_s: 1e9,
                    max_a: 0.15,
                }),
            }],
        };
        let run_with = |faults: Option<FaultSchedule>| {
            let mut sim = HybridSimulator::dac07(&scenario.device);
            if let Some(schedule) = faults {
                sim = sim.with_faults(schedule);
            }
            let mut policy = ConvDpm::dac07();
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            sim.run(&scenario.trace, &mut sleep, &mut policy, &mut storage)
                .unwrap()
                .metrics
        };
        let nominal = run_with(None);
        let starved = run_with(Some(schedule));
        assert_eq!(starved.faults_applied, 1);
        assert!(starved.delivered_charge < nominal.delivered_charge);
        // Conv-DPM pinned at 0.15 A cannot carry the active load: the
        // starved run browns out, and the whole deficit is attributed to
        // the fault window.
        assert!(starved.deficit_time > nominal.deficit_time);
        assert!(starved.fault_deficit_time > Seconds::ZERO);
        assert!(starved.fault_deficit_time <= starved.deficit_time + Seconds::new(1e-9));
    }

    #[test]
    fn coalesced_and_per_chunk_paths_agree_under_faults() {
        use fcdpm_faults::{
            EfficiencyFade, FaultEvent, FaultKind, FaultSchedule, FuelStarvation, SelfDischarge,
        };
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let schedule = FaultSchedule {
            seed: 9,
            events: vec![
                FaultEvent {
                    at_s: 40.25, // deliberately off the chunk grid
                    kind: FaultKind::EfficiencyFade(EfficiencyFade {
                        alpha_scale: 0.9,
                        beta_scale: 1.1,
                    }),
                },
                FaultEvent {
                    at_s: 90.0,
                    kind: FaultKind::FuelStarvation(FuelStarvation {
                        until_s: 140.0,
                        max_a: 0.6,
                    }),
                },
                FaultEvent {
                    at_s: 120.0,
                    kind: FaultKind::SelfDischarge(SelfDischarge { leak_a: 0.005 }),
                },
            ],
        };
        let run_with = |coalescing: bool| {
            let mut sim = HybridSimulator::dac07(&scenario.device).with_faults(schedule.clone());
            if !coalescing {
                sim = sim.without_coalescing();
            }
            let mut policy = ConvDpm::dac07();
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            sim.run(&scenario.trace, &mut sleep, &mut policy, &mut storage)
                .unwrap()
                .metrics
        };
        let fast = run_with(true);
        let slow = run_with(false);
        assert_eq!(fast.faults_applied, 3);
        assert_eq!(slow.faults_applied, 3);
        assert!(fast.fuel.total().approx_eq(slow.fuel.total(), 1e-6));
        assert!(fast.delivered_charge.approx_eq(slow.delivered_charge, 1e-6));
        assert!(fast.final_soc.approx_eq(slow.final_soc, 1e-6));
        assert!((fast.deficit_time - slow.deficit_time).abs() < Seconds::new(1e-6));
        assert!((fast.fault_deficit_time - slow.fault_deficit_time).abs() < Seconds::new(1e-6));
    }

    #[test]
    fn storage_faults_drain_and_bleed() {
        use fcdpm_faults::{FaultEvent, FaultKind, FaultSchedule, SelfDischarge, StorageFade};
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let run_with = |events: Vec<FaultEvent>| {
            let sim = HybridSimulator::dac07(&scenario.device)
                .with_faults(FaultSchedule { seed: 2, events });
            let mut policy = ConvDpm::dac07();
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            sim.run(&scenario.trace, &mut sleep, &mut policy, &mut storage)
                .unwrap()
                .metrics
        };
        let nominal = run_with(Vec::new());
        let leaky = run_with(vec![FaultEvent {
            at_s: 0.0,
            kind: FaultKind::SelfDischarge(SelfDischarge { leak_a: 0.02 }),
        }]);
        // A parasitic leak drains charge the nominal run kept (Conv-DPM
        // over-delivers, so the nominal run ends saturated or bled).
        assert!(leaky.final_soc <= nominal.final_soc);
        assert!(leaky.bled_charge < nominal.bled_charge);
        let faded = run_with(vec![FaultEvent {
            at_s: 10.0,
            kind: FaultKind::StorageFade(StorageFade {
                capacity_scale: 0.25,
            }),
        }]);
        // The faded element cannot hold more than a quarter of nominal:
        // the excess is bled and the run ends at the faded rail.
        assert!(faded.final_soc <= cap * 0.25 + Charge::new(1e-9));
        assert!(faded.bled_charge > nominal.bled_charge);
    }

    #[test]
    fn empty_trace_yields_zero_metrics() {
        let scenario = Scenario::experiment1();
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::dac07_supercap();
        let mut sleep = PredictiveSleep::new(0.5);
        let mut policy = ConvDpm::dac07();
        let m = sim
            .run(&Trace::new(), &mut sleep, &mut policy, &mut storage)
            .unwrap()
            .metrics;
        assert_eq!(m.slots, 0);
        assert!(m.fuel.total().is_zero());
    }
}
