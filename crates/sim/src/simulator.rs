//! The hybrid-source co-simulator.

use fcdpm_core::dpm::SleepPolicy;
use fcdpm_core::policy::{ActiveStart, FcOutputPolicy, PolicyPhase, SlotEnd, SlotStart};
use fcdpm_device::{DeviceSpec, SlotTimeline};
use fcdpm_fuelcell::LinearEfficiency;
use fcdpm_storage::{ChargeStorage, StorageFlow};
use fcdpm_units::{Amps, Charge, CurrentRange, Seconds};
use fcdpm_workload::Trace;

use crate::{FuelFlowModel, ProfileRecorder, SimError, SimMetrics};

/// Residual floor for the chunk loop, as a fraction of the control step:
/// `remaining -= dt` accumulates floating-point error, and without a
/// floor a segment whose duration is not an exact multiple of the step
/// can leave a ~1e-16 s ghost chunk that hits the recorder and skews the
/// work counters. A final chunk is widened to absorb any residual below
/// this fraction of the step.
pub(crate) const RESIDUAL_FLOOR_FRACTION: f64 = 1e-9;

/// Wall-clock duration of the brownout inside one integration step.
///
/// Within a step the storage discharges at a constant rate, so the
/// browned-out portion is the deficit's share of the total demanded
/// charge. This makes the sum invariant under the step size and under
/// chunk coalescing, unlike a chunk count.
pub(crate) fn deficit_time_of(flow: &StorageFlow, dt: Seconds) -> Seconds {
    if flow.deficit.is_zero() {
        return Seconds::ZERO;
    }
    let demanded = flow.deficit + flow.discharged;
    if demanded.is_zero() {
        dt
    } else {
        dt * (flow.deficit / demanded)
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Aggregate metrics of the run.
    pub metrics: SimMetrics,
}

/// Co-simulates a device trace against a DPM policy, an FC output policy
/// and a charge-storage element (see the [crate docs](crate) for the
/// wiring diagram).
///
/// The simulator integrates exactly: every segment of the device timeline
/// is piecewise-constant, and segments are subdivided into *control
/// chunks* (default 0.5 s) at whose boundaries the FC policy is
/// re-consulted — this is what lets ASAP-DPM's recharge trigger fire "as
/// soon as possible" mid-segment.
///
/// Policies that hold a constant setpoint across a segment can say so via
/// [`FcOutputPolicy::steady_current`]; such segments are integrated in
/// closed form (the *chunk-coalescing fast path*) instead of chunk by
/// chunk, with identical physics up to floating-point accumulation order.
/// [`Self::without_coalescing`] forces per-chunk stepping for A/B
/// comparison.
#[derive(Debug)]
pub struct HybridSimulator<'a> {
    device: &'a DeviceSpec,
    fuel_model: Box<dyn FuelFlowModel + Send + Sync>,
    range: CurrentRange,
    control_step: Seconds,
    charger_efficiency: f64,
    discharger_efficiency: f64,
    coalescing: bool,
}

impl<'a> HybridSimulator<'a> {
    /// Creates a simulator over an explicit fuel-flow model and
    /// load-following range.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `control_step` is not
    /// positive.
    pub fn new(
        device: &'a DeviceSpec,
        fuel_model: Box<dyn FuelFlowModel + Send + Sync>,
        range: CurrentRange,
        control_step: Seconds,
    ) -> Result<Self, SimError> {
        if control_step <= Seconds::ZERO || !control_step.is_finite() {
            return Err(SimError::InvalidConfig {
                name: "control_step",
            });
        }
        Ok(Self {
            device,
            fuel_model,
            range,
            control_step,
            charger_efficiency: 1.0,
            discharger_efficiency: 1.0,
            coalescing: true,
        })
    }

    /// Disables the chunk-coalescing fast path, forcing per-chunk
    /// integration even through segments for which the policy offers a
    /// steady-setpoint hint. Intended for A/B comparison against the
    /// fast path (the cross-path determinism suite and the bench
    /// harness); the physics results agree either way, only the work
    /// counters differ.
    #[must_use]
    pub fn without_coalescing(mut self) -> Self {
        self.coalescing = false;
        self
    }

    /// Whether the chunk-coalescing fast path is enabled (it is by
    /// default).
    #[must_use]
    pub fn coalescing_enabled(&self) -> bool {
        self.coalescing
    }

    /// Models the charger/discharger blocks of the paper's Figure 1 as
    /// lossy paths between the bus and the storage element: only
    /// `charger` of each ampere pushed toward storage arrives, and
    /// `1/discharger` amperes must be drawn per ampere delivered. The
    /// default (both 1.0) is the paper's lossless assumption.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if either efficiency is
    /// outside `(0, 1]`.
    pub fn with_buffer_path_efficiency(
        mut self,
        charger: f64,
        discharger: f64,
    ) -> Result<Self, SimError> {
        if !(charger > 0.0 && charger <= 1.0) {
            return Err(SimError::InvalidConfig {
                name: "charger_efficiency",
            });
        }
        if !(discharger > 0.0 && discharger <= 1.0) {
            return Err(SimError::InvalidConfig {
                name: "discharger_efficiency",
            });
        }
        self.charger_efficiency = charger;
        self.discharger_efficiency = discharger;
        Ok(self)
    }

    /// Applies the Figure-1 charger/discharger losses to the bus-side
    /// imbalance `i_f − load`, returning the storage-side net current.
    pub(crate) fn buffer_net(&self, imbalance: fcdpm_units::Amps) -> fcdpm_units::Amps {
        if imbalance.is_negative() {
            imbalance / self.discharger_efficiency
        } else {
            imbalance * self.charger_efficiency
        }
    }

    /// The paper's configuration: linear efficiency model
    /// (α = 0.45, β = 0.13), load-following range `[0.1 A, 1.2 A]`,
    /// 0.5 s control chunks.
    #[must_use]
    pub fn dac07(device: &'a DeviceSpec) -> Self {
        Self::new(
            device,
            Box::new(LinearEfficiency::dac07()),
            CurrentRange::dac07(),
            Seconds::new(0.5),
        )
        // Invariant: 0.5 s is positive and finite, so `new` cannot
        // reject it. fcdpm-lint: allow(panic-policy)
        .expect("default control step is valid")
    }

    /// The device under simulation.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        self.device
    }

    /// The load-following range enforced on policy outputs.
    #[must_use]
    pub fn range(&self) -> CurrentRange {
        self.range
    }

    /// The control-chunk duration at which policies are re-consulted.
    #[must_use]
    pub fn control_step(&self) -> Seconds {
        self.control_step
    }

    /// The fuel-flow model integrating stack current.
    pub(crate) fn fuel_model(&self) -> &(dyn crate::FuelFlowModel + Send + Sync) {
        self.fuel_model.as_ref()
    }

    /// Integrates one whole segment in closed form under a steady
    /// setpoint: one fuel-model evaluation for the whole duration and one
    /// [`ChargeStorage::step_coalesced`] call that splits analytically at
    /// the saturation/depletion boundary.
    pub(crate) fn integrate_coalesced(
        &self,
        load: Amps,
        demanded: Amps,
        duration: Seconds,
        storage: &mut dyn ChargeStorage,
        metrics: &mut SimMetrics,
    ) -> Result<(), SimError> {
        let i_f = self.range.clamp(demanded);
        let i_fc = self.fuel_model.stack_current(i_f)?;
        metrics.fuel.consume(i_fc, duration);
        metrics.delivered_charge += i_f * duration;
        metrics.load_charge += load * duration;
        let flow = storage.step_coalesced(self.buffer_net(i_f - load), duration);
        metrics.bled_charge += flow.bled;
        metrics.deficit_charge += flow.deficit;
        metrics.deficit_time += deficit_time_of(&flow, duration);
        metrics.chunks_coalesced += (duration / self.control_step).ceil() as u64;
        Ok(())
    }

    /// Runs `trace` and returns the aggregate metrics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the fuel model rejects a demanded current
    /// (cannot happen with range-respecting models such as the defaults).
    pub fn run(
        &self,
        trace: &Trace,
        sleep: &mut dyn SleepPolicy,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
    ) -> Result<SimResult, SimError> {
        self.run_internal(trace, sleep, policy, storage, None)
    }

    /// Runs `trace` while sampling the current profile into `recorder`
    /// (the data behind Figure 7).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_recorded(
        &self,
        trace: &Trace,
        sleep: &mut dyn SleepPolicy,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
        recorder: &mut ProfileRecorder,
    ) -> Result<SimResult, SimError> {
        self.run_internal(trace, sleep, policy, storage, Some(recorder))
    }

    fn run_internal(
        &self,
        trace: &Trace,
        sleep: &mut dyn SleepPolicy,
        policy: &mut dyn FcOutputPolicy,
        storage: &mut dyn ChargeStorage,
        mut recorder: Option<&mut ProfileRecorder>,
    ) -> Result<SimResult, SimError> {
        let t_be = self.device.break_even_time();
        let mut metrics = SimMetrics::new();
        let mut time = Seconds::ZERO;

        for (index, slot) in trace.slots().iter().enumerate() {
            let decision = sleep.decide(t_be);
            let i_active = slot.active_current(self.device.bus_voltage());
            policy.begin_slot(&SlotStart {
                index,
                directive: decision.directive,
                predicted_idle: decision.predicted_idle,
                soc: storage.soc(),
            });
            let timeline = SlotTimeline::build_with_directive(
                self.device,
                slot.idle,
                decision.directive,
                slot.active,
                i_active,
            );
            if timeline.slept() {
                metrics.sleeps += 1;
            }
            metrics.task_latency += timeline.task_latency();

            // Active-phase totals, known on task arrival.
            let mut active_duration = Seconds::ZERO;
            let mut active_charge = Charge::ZERO;
            for seg in timeline.segments() {
                if !seg.kind.is_idle_phase() {
                    active_duration += seg.duration;
                    active_charge += seg.charge();
                }
            }

            let mut active_started = false;
            for seg in timeline.segments() {
                let phase = if seg.kind.is_idle_phase() {
                    PolicyPhase::Idle
                } else {
                    PolicyPhase::Active
                };
                if phase == PolicyPhase::Active && !active_started {
                    active_started = true;
                    policy.begin_active(&ActiveStart {
                        duration: active_duration,
                        charge: active_charge,
                        soc: storage.soc(),
                    });
                }
                if seg.duration <= Seconds::ZERO {
                    continue;
                }

                // Fast path: with a steady-setpoint hint the whole
                // segment integrates in closed form — one fuel-model
                // evaluation, one (analytically rail-split) storage
                // update. Skipped while the recorder still wants samples
                // so figure outputs keep their per-chunk resolution.
                let record_pending = recorder.as_deref().is_some_and(ProfileRecorder::active);
                if self.coalescing && !record_pending {
                    if let Some(demanded) = policy.steady_current(phase, seg.load, storage.soc()) {
                        metrics.policy_consultations += 1;
                        self.integrate_coalesced(
                            seg.load,
                            demanded,
                            seg.duration,
                            storage,
                            &mut metrics,
                        )?;
                        time += seg.duration;
                        continue;
                    }
                    metrics.policy_consultations += 1;
                }

                let residual_floor = self.control_step * RESIDUAL_FLOOR_FRACTION;
                let mut remaining = seg.duration;
                while remaining > Seconds::ZERO {
                    let mut dt = remaining.min(self.control_step);
                    if remaining - dt <= residual_floor {
                        // Widen the final chunk to absorb the
                        // floating-point residual of `remaining -= dt`.
                        dt = remaining;
                    }
                    let demanded = policy.segment_current(phase, seg.load, storage.soc());
                    metrics.policy_consultations += 1;
                    let i_f = self.range.clamp(demanded);
                    let i_fc = self.fuel_model.stack_current(i_f)?;
                    metrics.fuel.consume(i_fc, dt);
                    metrics.delivered_charge += i_f * dt;
                    metrics.load_charge += seg.load * dt;
                    let flow = storage.step(self.buffer_net(i_f - seg.load), dt);
                    metrics.bled_charge += flow.bled;
                    metrics.deficit_charge += flow.deficit;
                    metrics.deficit_time += deficit_time_of(&flow, dt);
                    metrics.chunks_stepped += 1;
                    if let Some(rec) = recorder.as_deref_mut() {
                        rec.record_chunk(time, dt, seg.load, i_f, i_fc, storage.soc());
                    }
                    time += dt;
                    remaining -= dt;
                }
            }

            sleep.observe_idle(slot.idle);
            policy.end_slot(&SlotEnd {
                t_idle: slot.idle,
                t_active: slot.active,
                i_active,
                soc: storage.soc(),
            });
            metrics.slots += 1;
        }

        metrics.final_soc = storage.soc();
        Ok(SimResult { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcdpm_core::dpm::PredictiveSleep;
    use fcdpm_core::policy::{AsapDpm, ConvDpm, FcDpm};
    use fcdpm_core::FuelOptimizer;
    use fcdpm_storage::IdealStorage;
    use fcdpm_units::Amps;
    use fcdpm_workload::Scenario;

    fn run_policy(
        scenario: &Scenario,
        policy: &mut dyn FcOutputPolicy,
        capacity: Charge,
    ) -> SimMetrics {
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::new(capacity, capacity * 0.5);
        let mut sleep = PredictiveSleep::new(scenario.rho);
        sim.run(&scenario.trace, &mut sleep, policy, &mut storage)
            .unwrap()
            .metrics
    }

    fn fcdpm_policy(scenario: &Scenario, capacity: Charge) -> FcDpm {
        FcDpm::new(
            FuelOptimizer::dac07(),
            &scenario.device,
            capacity,
            scenario.sigma,
            scenario.active_current_estimate,
        )
    }

    #[test]
    fn policy_ordering_on_camcorder() {
        // The paper's Table 2 ordering: FC-DPM < ASAP-DPM < Conv-DPM.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let conv = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        let asap = run_policy(&scenario, &mut AsapDpm::dac07(cap), cap);
        let mut fc = fcdpm_policy(&scenario, cap);
        let fcdpm = run_policy(&scenario, &mut fc, cap);
        let asap_norm = asap.normalized_fuel(&conv);
        let fc_norm = fcdpm.normalized_fuel(&conv);
        assert!(
            fc_norm < asap_norm && asap_norm < 1.0,
            "ordering violated: fc {fc_norm:.3}, asap {asap_norm:.3}"
        );
        // Band check against Table 2 (30.8 % and 40.8 %).
        assert!((0.25..0.40).contains(&fc_norm), "fc {fc_norm:.3}");
        assert!((0.30..0.55).contains(&asap_norm), "asap {asap_norm:.3}");
    }

    #[test]
    fn conv_fuel_matches_closed_form() {
        let scenario = Scenario::experiment1();
        let cap = Charge::new(1e9); // effectively infinite: no bleed concern
        let conv = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        let i_fc = LinearEfficiency::dac07()
            .stack_current(Amps::new(1.2))
            .unwrap();
        let expect = i_fc.amps() * conv.duration().seconds();
        assert!(
            (conv.fuel.total().amp_seconds() - expect).abs() < 1e-6,
            "fuel {} vs closed form {}",
            conv.fuel.total().amp_seconds(),
            expect
        );
    }

    #[test]
    fn charge_conservation() {
        // delivered = load + Δsoc + bled − deficit, exactly.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        {
            let policy = &mut ConvDpm::dac07() as &mut dyn FcOutputPolicy;
            let sim = HybridSimulator::dac07(&scenario.device);
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let initial = storage.soc();
            let mut sleep = PredictiveSleep::new(scenario.rho);
            let m = sim
                .run(&scenario.trace, &mut sleep, policy, &mut storage)
                .unwrap()
                .metrics;
            let lhs = m.delivered_charge.amp_seconds();
            let rhs = m.load_charge.amp_seconds()
                + (m.final_soc - initial).amp_seconds()
                + m.bled_charge.amp_seconds()
                - m.deficit_charge.amp_seconds();
            assert!(
                (lhs - rhs).abs() < 1e-6,
                "conservation violated: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn sleeps_most_slots_on_camcorder() {
        // Idle 8–20 s always exceeds T_be = 1 s; only the cold first slot
        // stays awake.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let m = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        assert_eq!(m.sleeps, m.slots - 1);
    }

    #[test]
    fn profile_recording() {
        let scenario = Scenario::experiment1();
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::dac07_supercap();
        let mut sleep = PredictiveSleep::new(scenario.rho);
        let mut rec = ProfileRecorder::new(Seconds::new(0.5), Seconds::new(300.0));
        let mut policy = ConvDpm::dac07();
        sim.run_recorded(
            &scenario.trace,
            &mut sleep,
            &mut policy,
            &mut storage,
            &mut rec,
        )
        .unwrap();
        // 300 s at 0.5 s sampling → 601 samples.
        assert_eq!(rec.samples().len(), 601);
        assert!(rec.samples().iter().all(|s| s.i_f == Amps::new(1.2)));
    }

    #[test]
    fn no_brownout_with_adequate_storage_fcdpm() {
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let mut fc = fcdpm_policy(&scenario, cap);
        let m = run_policy(&scenario, &mut fc, cap);
        assert!(
            m.brownout_fraction() < 0.01,
            "brownouts: {}",
            m.brownout_fraction()
        );
    }

    #[test]
    fn experiment2_ordering() {
        let scenario = Scenario::experiment2();
        let cap = Charge::from_milliamp_minutes(100.0);
        let conv = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        let asap = run_policy(&scenario, &mut AsapDpm::dac07(cap), cap);
        let mut fc = fcdpm_policy(&scenario, cap);
        let fcdpm = run_policy(&scenario, &mut fc, cap);
        let asap_norm = asap.normalized_fuel(&conv);
        let fc_norm = fcdpm.normalized_fuel(&conv);
        assert!(
            fc_norm < asap_norm && asap_norm < 1.0,
            "ordering violated: fc {fc_norm:.3}, asap {asap_norm:.3}"
        );
        // Table 3 reports 41.5 % and 49.1 %; our reconstruction lands
        // lower in absolute terms (see EXPERIMENTS.md) but preserves the
        // ordering and the FC-vs-ASAP gap, which these bands pin down.
        assert!((0.22..0.55).contains(&fc_norm), "fc {fc_norm:.3}");
        assert!((0.28..0.65).contains(&asap_norm), "asap {asap_norm:.3}");
    }

    #[test]
    fn lossy_buffer_paths_cost_fuel() {
        // Figure-1 charger/discharger losses: the same FC-DPM policy must
        // burn at least as much fuel when the buffer paths are lossy.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let run_with = |charger: f64, discharger: f64| {
            let sim = HybridSimulator::dac07(&scenario.device)
                .with_buffer_path_efficiency(charger, discharger)
                .unwrap();
            let mut policy = FcDpm::new(
                FuelOptimizer::dac07(),
                &scenario.device,
                cap,
                scenario.sigma,
                scenario.active_current_estimate,
            );
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            sim.run(&scenario.trace, &mut sleep, &mut policy, &mut storage)
                .unwrap()
                .metrics
        };
        let lossless = run_with(1.0, 1.0);
        let lossy = run_with(0.85, 0.85);
        assert!(
            lossy.fuel.total() >= lossless.fuel.total(),
            "lossy {} < lossless {}",
            lossy.fuel.total(),
            lossless.fuel.total()
        );
    }

    #[test]
    fn buffer_path_efficiency_validated() {
        let scenario = Scenario::experiment1();
        assert!(HybridSimulator::dac07(&scenario.device)
            .with_buffer_path_efficiency(0.0, 1.0)
            .is_err());
        assert!(HybridSimulator::dac07(&scenario.device)
            .with_buffer_path_efficiency(1.0, 1.5)
            .is_err());
        assert!(HybridSimulator::dac07(&scenario.device)
            .with_buffer_path_efficiency(0.9, 0.9)
            .is_ok());
    }

    #[test]
    fn invalid_control_step_rejected() {
        let scenario = Scenario::experiment1();
        let err = HybridSimulator::new(
            &scenario.device,
            Box::new(LinearEfficiency::dac07()),
            CurrentRange::dac07(),
            Seconds::ZERO,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidConfig {
                name: "control_step"
            }
        );
    }

    #[test]
    fn fast_path_coalesces_steady_policies() {
        // Conv-DPM hints a steady setpoint for every segment, so the
        // whole run integrates without a single per-chunk step.
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let m = run_policy(&scenario, &mut ConvDpm::dac07(), cap);
        assert_eq!(m.chunks_stepped, 0);
        assert!(m.chunks_coalesced > 0);
        assert!(m.policy_consultations > 0);
        // ASAP-DPM never hints: everything steps chunk by chunk.
        let m = run_policy(&scenario, &mut AsapDpm::dac07(cap), cap);
        assert_eq!(m.chunks_coalesced, 0);
        assert!(m.chunks_stepped > 0);
    }

    #[test]
    fn without_coalescing_reproduces_fast_path_physics() {
        let scenario = Scenario::experiment1();
        let cap = Charge::from_milliamp_minutes(100.0);
        let run_with = |coalescing: bool| {
            let mut sim = HybridSimulator::dac07(&scenario.device);
            if !coalescing {
                sim = sim.without_coalescing();
            }
            let mut policy = ConvDpm::dac07();
            let mut storage = IdealStorage::new(cap, cap * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            sim.run(&scenario.trace, &mut sleep, &mut policy, &mut storage)
                .unwrap()
                .metrics
        };
        let fast = run_with(true);
        let slow = run_with(false);
        assert!(slow.chunks_coalesced == 0 && fast.chunks_stepped == 0);
        assert_eq!(fast.slots, slow.slots);
        assert_eq!(fast.sleeps, slow.sleeps);
        assert!(fast.fuel.total().approx_eq(slow.fuel.total(), 1e-6));
        assert!(fast.delivered_charge.approx_eq(slow.delivered_charge, 1e-6));
        assert!(fast.final_soc.approx_eq(slow.final_soc, 1e-6));
        assert!((fast.deficit_time - slow.deficit_time).abs() < Seconds::new(1e-6));
    }

    #[test]
    fn recorder_keeps_per_chunk_resolution_until_horizon() {
        // With the recorder attached, segments inside the horizon still
        // step per chunk (so Figure-7 outputs are unchanged); once the
        // horizon passes, the fast path takes over.
        let scenario = Scenario::experiment1();
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::dac07_supercap();
        let mut sleep = PredictiveSleep::new(scenario.rho);
        let mut rec = ProfileRecorder::new(Seconds::new(0.5), Seconds::new(300.0));
        let mut policy = ConvDpm::dac07();
        let m = sim
            .run_recorded(
                &scenario.trace,
                &mut sleep,
                &mut policy,
                &mut storage,
                &mut rec,
            )
            .unwrap()
            .metrics;
        assert_eq!(rec.samples().len(), 601);
        assert!(m.chunks_stepped > 0, "horizon segments must step");
        assert!(
            m.chunks_coalesced > 0,
            "post-horizon segments must coalesce"
        );
    }

    #[test]
    fn empty_trace_yields_zero_metrics() {
        let scenario = Scenario::experiment1();
        let sim = HybridSimulator::dac07(&scenario.device);
        let mut storage = IdealStorage::dac07_supercap();
        let mut sleep = PredictiveSleep::new(0.5);
        let mut policy = ConvDpm::dac07();
        let m = sim
            .run(&Trace::new(), &mut sleep, &mut policy, &mut storage)
            .unwrap()
            .metrics;
        assert_eq!(m.slots, 0);
        assert!(m.fuel.total().is_zero());
    }
}
