//! Calibration workflow: from bench measurements to a running policy.
//!
//! A downstream user has (1) an I-V sweep of their own stack and (2) a
//! system-efficiency sweep of their composed supply. This example walks
//! the full chain the paper's authors walked: fit the polarization model
//! to the I-V data, compose the system, fit the linear efficiency model
//! `η_s = α − β·I_F`, and hand it to the optimizer.
//!
//! ```sh
//! cargo run --example calibrate
//! ```

use fcdpm::fuelcell::{FcSystem, FcSystemBuilder};
use fcdpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- "Bench data": an I-V sweep with measurement noise. In real use
    // this comes from your instrument; here the reference stack plays the
    // part of the hardware.
    let bench_stack = PolarizationCurve::bcs_20w();
    let iv_samples: Vec<(Amps, Volts)> = (0..24)
        .map(|k| {
            let i = Amps::new(0.05 + k as f64 * 0.06);
            let noise = 0.04 * ((k as f64 * 1.7).sin());
            (i, Volts::new(bench_stack.voltage(i).volts() + noise))
        })
        .collect();

    // --- Step 1: fit the polarization model.
    let fit = PolarizationCurve::fit_iv(&iv_samples, 20)?;
    println!(
        "stack fit: rmse {:.3} V over {} samples; V_oc = {:.2}, max power = {:.1}",
        fit.rmse,
        iv_samples.len(),
        fit.curve.open_circuit_voltage(),
        fit.curve.max_power_point().power
    );

    // --- Step 2: compose the system around the fitted stack.
    let system: FcSystem = FcSystemBuilder::new().stack(fit.curve).build();

    // --- Step 3: fit the linear efficiency model over the load-following
    // range (what the paper measured as α = 0.45, β = 0.13 on their bench).
    let eff_fit = system.fit_linear_efficiency(23)?;
    println!(
        "efficiency fit: eta_s = {:.3} - {:.3} I_F (rmse {:.4})",
        eff_fit.model.alpha(),
        eff_fit.model.beta(),
        eff_fit.rmse
    );

    // --- Step 4: run FC-DPM against the physical system with the fitted
    // planner model (controller plans on the fit; plant burns through the
    // composition).
    let scenario = Scenario::experiment1();
    let capacity = Charge::from_milliamp_minutes(100.0);
    let range = fcdpm::units::CurrentRange::dac07();
    let sim = fcdpm::sim::HybridSimulator::new(
        &scenario.device,
        Box::new(system),
        range,
        Seconds::new(0.5),
    )?;
    let run = |policy: &mut dyn FcOutputPolicy| -> Result<SimMetrics, SimError> {
        let mut storage = IdealStorage::new(capacity, capacity * 0.5);
        let mut sleep = PredictiveSleep::new(scenario.rho);
        Ok(sim
            .run(&scenario.trace, &mut sleep, policy, &mut storage)?
            .metrics)
    };
    let conv = run(&mut ConvDpm::new(range))?;
    let mut fc_policy = FcDpm::new(
        FuelOptimizer::new(eff_fit.model, range),
        &scenario.device,
        capacity,
        scenario.sigma,
        scenario.active_current_estimate,
    );
    let fc = run(&mut fc_policy)?;
    println!(
        "on the calibrated plant: FC-DPM at {:.1}% of Conv-DPM's fuel",
        fc.normalized_fuel(&conv) * 100.0
    );
    Ok(())
}
