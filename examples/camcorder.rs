//! Experiment 1 end to end: builds the DVD-camcorder scenario from its
//! published constants (rather than the preset), runs FC-DPM with profile
//! recording, and prints a compact per-phase report plus a 60 s excerpt of
//! the current profile.
//!
//! ```sh
//! cargo run --example camcorder
//! ```

use fcdpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Rebuild the device from Figure 6 explicitly, to show the API.
    let device = DeviceSpec::builder("DVD camcorder")
        .bus_voltage(Volts::new(12.0))
        .run_power(Watts::new(14.65))
        .standby_power(Watts::new(4.84))
        .sleep_power(Watts::new(2.4))
        .power_down(Seconds::new(0.5), Watts::new(4.8))
        .wake_up(Seconds::new(0.5), Watts::new(4.8))
        .start_up(Seconds::new(1.5))
        .shut_down(Seconds::new(0.5))
        .build()?;
    println!(
        "device: {} (T_be = {:.2})",
        device.mode_power(PowerMode::Run),
        device.break_even_time()
    );

    // Rebuild the workload from its published constants.
    let trace = CamcorderTrace::dac07()
        .seed(2007)
        .horizon(Seconds::from_minutes(28.0))
        .build();
    let stats = trace.stats();
    println!(
        "trace: {} slots, idle {:.1}-{:.1} s (mean {:.1}), active {:.2} s",
        stats.slots, stats.idle.min, stats.idle.max, stats.idle.mean, stats.active.mean
    );

    // Power source: paper's supercap buffer + FC-DPM.
    let capacity = Charge::from_milliamp_minutes(100.0);
    let mut storage = SuperCapacitor::dac07();
    let mut sleep = PredictiveSleep::new(0.5);
    let mut policy = FcDpm::new(
        FuelOptimizer::dac07(),
        &device,
        capacity,
        0.5,
        Some(device.mode_current(PowerMode::Run)),
    );
    let sim = HybridSimulator::dac07(&device);
    let mut recorder = ProfileRecorder::new(Seconds::new(2.0), Seconds::new(60.0));
    let result = sim.run_recorded(&trace, &mut sleep, &mut policy, &mut storage, &mut recorder)?;
    let m = &result.metrics;

    println!();
    println!("fuel consumed:    {:.1}", m.fuel.total());
    println!("mean I_fc:        {:.4}", m.mean_stack_current());
    println!("mean I_F:         {:.4}", m.mean_output_current());
    println!("slept slots:      {}/{}", m.sleeps, m.slots);
    println!("bled charge:      {:.2}", m.bled_charge);
    println!("brownout charge:  {:.3}", m.deficit_charge);
    println!("task latency:     {:.1} total", m.task_latency);
    println!("final SoC:        {:.2} / {:.2}", m.final_soc, capacity);

    println!();
    println!("first 60 s of the current profile (2 s sampling):");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "t[s]", "load[A]", "I_F[A]", "I_fc[A]", "SoC[A*s]"
    );
    for s in recorder.samples() {
        println!(
            "{:>6.1} {:>8.3} {:>8.3} {:>8.3} {:>8.2}",
            s.time.seconds(),
            s.i_load.amps(),
            s.i_f.amps(),
            s.i_fc.amps(),
            s.soc.amp_seconds()
        );
    }
    Ok(())
}
