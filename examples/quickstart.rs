//! Quickstart: simulate the paper's three policies on the DVD-camcorder
//! workload and print the normalized fuel table.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fcdpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Experiment 1 of the paper: a DVD camcorder encoding MPEG for
    // 28 minutes, powered by a BCS 20 W fuel cell plus a 1 F
    // super-capacitor (100 mA·min at 12 V).
    let scenario = Scenario::experiment1();
    let capacity = Charge::from_milliamp_minutes(100.0);
    let sim = HybridSimulator::dac07(&scenario.device);

    // A tiny helper: run one FC output policy with a fresh storage element
    // and a fresh predictive DPM layer.
    let run = |policy: &mut dyn FcOutputPolicy| -> Result<SimMetrics, SimError> {
        let mut storage = IdealStorage::new(capacity, capacity * 0.5);
        let mut sleep = PredictiveSleep::new(scenario.rho);
        Ok(sim
            .run(&scenario.trace, &mut sleep, policy, &mut storage)?
            .metrics)
    };

    let conv = run(&mut ConvDpm::dac07())?;
    let asap = run(&mut AsapDpm::dac07(capacity))?;
    let mut fc_dpm = FcDpm::new(
        FuelOptimizer::dac07(),
        &scenario.device,
        capacity,
        scenario.sigma,
        scenario.active_current_estimate,
    );
    let fc = run(&mut fc_dpm)?;

    println!(
        "workload: {} ({} slots, {:.1} min)",
        scenario.trace.name(),
        scenario.trace.len(),
        scenario.trace.total_duration().minutes()
    );
    println!();
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "policy", "fuel [A*s]", "mean I_fc [A]", "vs Conv"
    );
    for (name, m) in [("Conv-DPM", &conv), ("ASAP-DPM", &asap), ("FC-DPM", &fc)] {
        println!(
            "{:<10} {:>12.1} {:>14.4} {:>11.1}%",
            name,
            m.fuel.total().amp_seconds(),
            m.mean_stack_current().amps(),
            m.normalized_fuel(&conv) * 100.0
        );
    }
    println!();
    println!(
        "FC-DPM extends lifetime {:.2}x over ASAP-DPM",
        fc.lifetime_extension_over(&asap)
    );

    // Translate into hours for a concrete tank.
    let tank = HydrogenTank::from_hydrogen_moles(2.0, GibbsCoefficient::dac07());
    println!(
        "on a 2 mol H2 tank: Conv {:.1} h, ASAP {:.1} h, FC-DPM {:.1} h",
        tank.lifetime_at(conv.mean_stack_current()).seconds() / 3600.0,
        tank.lifetime_at(asap.mean_stack_current()).seconds() / 3600.0,
        tank.lifetime_at(fc.mean_stack_current()).seconds() / 3600.0,
    );
    Ok(())
}
