//! Bringing your own hardware: models a hypothetical sensor gateway (not
//! from the paper) with a different power table, a Li-ion buffer instead
//! of a super-capacitor, and a physically composed fuel-cell system
//! instead of the linear efficiency model — then checks that FC-DPM still
//! wins. This is the path a downstream user takes to evaluate FC-DPM on
//! their own platform.
//!
//! ```sh
//! cargo run --example custom_device
//! ```

use fcdpm::prelude::*;
use fcdpm::units::CurrentRange;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sensor gateway: bursty radio uplinks between long lulls.
    let device = DeviceSpec::builder("sensor gateway")
        .bus_voltage(Volts::new(12.0))
        .run_power(Watts::new(11.0))
        .standby_power(Watts::new(3.2))
        .sleep_power(Watts::new(0.9))
        .power_down(Seconds::new(0.8), Watts::new(3.0))
        .wake_up(Seconds::new(0.8), Watts::new(3.0))
        .build()?;
    println!(
        "device: {} — derived T_be = {:.2}",
        11.0,
        device.break_even_time()
    );

    // A bursty workload: long idles, short heavy uplinks.
    let trace = SyntheticTrace::dac07()
        .seed(77)
        .idle_range(Seconds::new(20.0), Seconds::new(90.0))
        .active_range(Seconds::new(1.0), Seconds::new(6.0))
        .power_range(Watts::new(9.0), Watts::new(13.0))
        .horizon(Seconds::from_minutes(60.0))
        .build();
    println!(
        "workload: {} slots over {:.0} min",
        trace.len(),
        trace.total_duration().minutes()
    );

    // The power source: physically composed FC system (stack + PWM-PFM
    // converter + variable-speed fan) and a 500 mAh Li-ion buffer.
    let fc_system = FcSystem::dac07_variable_fan();
    let fit = fc_system.fit_linear_efficiency(23)?;
    println!(
        "fitted efficiency of the composed system: eta = {:.3} - {:.3} I_F (rmse {:.4})",
        fit.model.alpha(),
        fit.model.beta(),
        fit.rmse
    );
    let capacity = Charge::from_amp_hours(0.5);
    let range = CurrentRange::dac07();

    // The optimizer plans against the *fitted* model; the simulator burns
    // fuel through the *physical* model. This is exactly the situation in
    // a real deployment: the controller's model is an approximation.
    let optimizer = FuelOptimizer::new(fit.model, range);
    let sim =
        fcdpm::sim::HybridSimulator::new(&device, Box::new(fc_system), range, Seconds::new(0.5))?;

    let run = |policy: &mut dyn FcOutputPolicy| -> Result<SimMetrics, SimError> {
        let mut storage = LiIonBattery::new(capacity, 0.97, 0.0, capacity * 0.5);
        let mut sleep = PredictiveSleep::new(0.5);
        Ok(sim.run(&trace, &mut sleep, policy, &mut storage)?.metrics)
    };

    let conv = run(&mut ConvDpm::new(range))?;
    let asap = run(&mut AsapDpm::new(range, capacity))?;
    let mut fc_policy = FcDpm::new(optimizer, &device, capacity, 0.5, None);
    let fc = run(&mut fc_policy)?;

    println!();
    println!("{:<10} {:>12} {:>12}", "policy", "fuel [A*s]", "vs Conv");
    for (name, m) in [("Conv-DPM", &conv), ("ASAP-DPM", &asap), ("FC-DPM", &fc)] {
        println!(
            "{:<10} {:>12.1} {:>11.1}%",
            name,
            m.fuel.total().amp_seconds(),
            m.normalized_fuel(&conv) * 100.0
        );
    }
    println!();
    println!(
        "FC-DPM vs ASAP on foreign hardware with a mismatched model: {:.1}% saving",
        (1.0 - fc.normalized_fuel(&asap)) * 100.0
    );
    Ok(())
}
