//! Experiment 2 end to end, plus seed-robustness: runs the three policies
//! on several independently seeded synthetic workloads and reports the
//! spread of the normalized-fuel results — a check the paper's single
//! trace cannot provide.
//!
//! ```sh
//! cargo run --example synthetic
//! ```

use fcdpm::prelude::*;

fn run_policies(scenario: &Scenario) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let capacity = Charge::from_milliamp_minutes(100.0);
    let sim = HybridSimulator::dac07(&scenario.device);
    let run = |policy: &mut dyn FcOutputPolicy| -> Result<SimMetrics, SimError> {
        let mut storage = IdealStorage::new(capacity, capacity * 0.5);
        let mut sleep = PredictiveSleep::new(scenario.rho);
        Ok(sim
            .run(&scenario.trace, &mut sleep, policy, &mut storage)?
            .metrics)
    };
    let conv = run(&mut ConvDpm::dac07())?;
    let asap = run(&mut AsapDpm::dac07(capacity))?;
    let mut fc_dpm = FcDpm::new(
        FuelOptimizer::dac07(),
        &scenario.device,
        capacity,
        scenario.sigma,
        scenario.active_current_estimate,
    );
    let fc = run(&mut fc_dpm)?;
    Ok((asap.normalized_fuel(&conv), fc.normalized_fuel(&conv)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Experiment 2 across independent trace seeds:");
    println!(
        "{:>6} {:>12} {:>12} {:>16}",
        "seed", "ASAP/Conv", "FC/Conv", "FC saving vs ASAP"
    );
    let mut asap_all = Vec::new();
    let mut fc_all = Vec::new();
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
        let scenario = Scenario::experiment2_seeded(seed);
        let (asap, fc) = run_policies(&scenario)?;
        println!(
            "{:>6} {:>11.1}% {:>11.1}% {:>15.1}%",
            seed,
            asap * 100.0,
            fc * 100.0,
            (1.0 - fc / asap) * 100.0
        );
        asap_all.push(asap);
        fc_all.push(fc);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - v.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    println!();
    println!(
        "ASAP/Conv: mean {:.1}% (spread {:.1} pts);  FC/Conv: mean {:.1}% (spread {:.1} pts)",
        mean(&asap_all) * 100.0,
        spread(&asap_all) * 100.0,
        mean(&fc_all) * 100.0,
        spread(&fc_all) * 100.0
    );
    println!("paper's single-trace values: ASAP 49.1%, FC-DPM 41.5%");

    // FC-DPM must win on every seed, not just on average.
    let wins = asap_all.iter().zip(&fc_all).all(|(a, f)| f < a);
    println!("FC-DPM beat ASAP-DPM on every seed: {wins}");
    Ok(())
}
