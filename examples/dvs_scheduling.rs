//! Fuel-aware DVS (the paper's companion problem): pick a speed level for
//! a periodic task under three objectives — device energy, fuel with a
//! load-following source, fuel with an averaged hybrid source — then play
//! the chosen operating points through the full DPM simulator.
//!
//! ```sh
//! cargo run --example dvs_scheduling
//! ```

use fcdpm::dvs::{evaluate, to_trace, DvsDevice, DvsTask};
use fcdpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DvsDevice::quadratic_example();
    let task = DvsTask::new(Seconds::new(2.0), Seconds::new(10.0), Seconds::new(8.0))?;
    let eff = LinearEfficiency::dac07();

    println!(
        "task: {:.1} s of full-speed work every {:.0} s (deadline {:.0} s)",
        task.work().seconds(),
        task.period().seconds(),
        task.deadline().seconds()
    );
    println!();
    println!(
        "{:>6} {:>8} {:>6} {:>12} {:>14} {:>14}",
        "speed", "exec[s]", "ok", "energy[J]", "fuel-follow", "fuel-averaged"
    );
    let eval = evaluate(&device, &task, &eff)?;
    for r in eval.reports() {
        println!(
            "{:>6.2} {:>8.2} {:>6} {:>12.1} {:>14.2} {:>14.2}",
            r.level.speed,
            r.exec_time.seconds(),
            if r.feasible { "yes" } else { "no" },
            r.device_energy.joules(),
            r.fuel_follow.amp_seconds(),
            r.fuel_averaged.amp_seconds()
        );
    }
    println!();
    let energy = eval.energy_optimal().expect("feasible");
    let follow = eval.fuel_follow_optimal().expect("feasible");
    let averaged = eval.fuel_averaged_optimal().expect("feasible");
    println!(
        "energy-optimal speed:        {:.2} (classic leakage-aware DVS)",
        energy.level.speed
    );
    println!(
        "fuel-optimal (follow):       {:.2} (DAC'06 fixed-output source)",
        follow.level.speed
    );
    println!(
        "fuel-optimal (averaged):     {:.2} (hybrid source with buffer)",
        averaged.level.speed
    );

    // Play the fuel-optimal operating point through the full DPM stack:
    // the averaged-source prediction must match the simulator's FC-DPM.
    let spec = DeviceSpec::builder("dvs platform")
        .bus_voltage(Volts::new(12.0))
        .run_power(averaged.level.power)
        .standby_power(Watts::new(1.5))
        .sleep_power(Watts::new(0.4))
        .power_down(Seconds::new(0.3), Watts::new(1.2))
        .wake_up(Seconds::new(0.3), Watts::new(1.2))
        .build()?;
    let trace = to_trace(&device, &task, &averaged.level, 200);
    let capacity = Charge::new(20.0);
    let sim = HybridSimulator::dac07(&spec);
    let mut policy = FcDpm::new(FuelOptimizer::dac07(), &spec, capacity, 0.5, None);
    let mut storage = IdealStorage::new(capacity, capacity * 0.5);
    let mut sleep = PredictiveSleep::new(0.5);
    let m = sim
        .run(&trace, &mut sleep, &mut policy, &mut storage)?
        .metrics;
    println!();
    println!(
        "full simulation at the chosen level: mean I_fc = {:.4} over {:.0} periods",
        m.mean_stack_current(),
        trace.len()
    );
    println!(
        "(single-period closed form predicted {:.4}; the simulator does better \
because its DPM layer sleeps through the slack at 0.4 W instead of idling at 1.5 W)",
        Amps::new(averaged.fuel_averaged.amp_seconds() / task.period().seconds())
    );
    Ok(())
}
