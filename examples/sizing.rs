//! Hybrid-source sizing study: how big must the charge-storage buffer be
//! for FC-DPM to realize its advantage, and how long will a given
//! hydrogen tank last under each policy? This is the design question the
//! paper's introduction motivates (an FC sized for the *average* load
//! with a storage element absorbing the peaks).
//!
//! ```sh
//! cargo run --example sizing
//! ```

use fcdpm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::experiment1();
    let sim = HybridSimulator::dac07(&scenario.device);

    println!("storage-capacity sweep (Experiment-1 workload):");
    println!(
        "{:>14} {:>12} {:>12} {:>10} {:>10}",
        "capacity[A*s]", "FC/Conv", "bled[A*s]", "deficit", "saving"
    );
    for cap in [0.5, 1.0, 2.0, 3.0, 6.0, 12.0, 30.0, 120.0] {
        let capacity = Charge::new(cap);
        let run = |policy: &mut dyn FcOutputPolicy| -> Result<SimMetrics, SimError> {
            let mut storage = IdealStorage::new(capacity, capacity * 0.5);
            let mut sleep = PredictiveSleep::new(scenario.rho);
            Ok(sim
                .run(&scenario.trace, &mut sleep, policy, &mut storage)?
                .metrics)
        };
        let conv = run(&mut ConvDpm::dac07())?;
        let asap = run(&mut AsapDpm::dac07(capacity))?;
        let mut policy = FcDpm::new(
            FuelOptimizer::dac07(),
            &scenario.device,
            capacity,
            scenario.sigma,
            scenario.active_current_estimate,
        );
        let fc = run(&mut policy)?;
        println!(
            "{:>14.1} {:>11.1}% {:>12.2} {:>10.3} {:>9.1}%",
            cap,
            fc.normalized_fuel(&conv) * 100.0,
            fc.bled_charge.amp_seconds(),
            fc.deficit_charge.amp_seconds(),
            (1.0 - fc.normalized_fuel(&asap)) * 100.0
        );
    }

    println!();
    println!("tank sizing at the paper's buffer (100 mA*min):");
    let capacity = Charge::from_milliamp_minutes(100.0);
    let run = |policy: &mut dyn FcOutputPolicy| -> Result<SimMetrics, SimError> {
        let mut storage = IdealStorage::new(capacity, capacity * 0.5);
        let mut sleep = PredictiveSleep::new(scenario.rho);
        Ok(sim
            .run(&scenario.trace, &mut sleep, policy, &mut storage)?
            .metrics)
    };
    let conv = run(&mut ConvDpm::dac07())?;
    let mut policy = FcDpm::new(
        FuelOptimizer::dac07(),
        &scenario.device,
        capacity,
        scenario.sigma,
        scenario.active_current_estimate,
    );
    let fc = run(&mut policy)?;
    let zeta = GibbsCoefficient::dac07();
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "tank[mol]", "Conv life[h]", "FC-DPM life[h]", "gain"
    );
    for moles in [0.5, 1.0, 2.0, 5.0] {
        let tank = HydrogenTank::from_hydrogen_moles(moles, zeta);
        let conv_h = tank.lifetime_at(conv.mean_stack_current()).seconds() / 3600.0;
        let fc_h = tank.lifetime_at(fc.mean_stack_current()).seconds() / 3600.0;
        println!(
            "{:>10.1} {:>14.1} {:>14.1} {:>13.2}x",
            moles,
            conv_h,
            fc_h,
            fc_h / conv_h
        );
    }
    println!(
        "(fuel utilization implied by the measured zeta: {:.1}%)",
        zeta.fuel_utilization() * 100.0
    );

    // The exact sizing answer, from the offline planner: the smallest
    // buffer for which the fuel-optimal plan never touches a storage
    // boundary.
    let sized = fcdpm::core::sizing::minimum_storage_capacity(
        &FuelOptimizer::dac07(),
        &scenario.trace,
        &scenario.device,
        Charge::new(0.05),
    )?;
    println!();
    println!(
        "minimum storage for fully unconstrained FC-DPM: {:.2} \
         ({:.0} mA*min; the paper's 1 F super-capacitor holds 100 mA*min)",
        sized.min_capacity,
        sized.min_capacity.amp_seconds() / 60.0 * 1000.0
    );
    Ok(())
}
