//! Minimal local `serde` shim.
//!
//! The real serde crate is unreachable in this build environment, so this
//! crate provides the subset of its API the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits (defined over a JSON-shaped
//! [`Value`] tree rather than serde's visitor-based data model),
//! [`de::DeserializeOwned`], and — behind the `derive` feature — the
//! `#[derive(Serialize, Deserialize)]` macros.
//!
//! The data model intentionally mirrors JSON: structs become ordered maps,
//! sequences become arrays, newtype structs are transparent, unit enum
//! variants become strings and newtype variants become one-entry maps.
//! This matches what `serde_json` produces for the same shapes, so code
//! written against the real crates keeps working unchanged.

#![forbid(unsafe_code)]

use core::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation between
/// Rust values and any concrete format.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` out of the value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] naming the mismatch when the tree does not
    /// have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// The deserialization half of the API, mirroring `serde::de`.
pub mod de {
    /// Owned deserialization — in this shim every [`Deserialize`]
    /// implementor qualifies.
    ///
    /// [`Deserialize`]: super::Deserialize
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}

    pub use super::Error;
}

/// The serialization half of the API, mirroring `serde::ser`.
pub mod ser {
    pub use super::{Error, Serialize};
}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {}", got.kind()))
}

/// Fetches and deserializes a struct field from an object, with a
/// missing-field error naming the field. Used by the derive expansion.
///
/// # Errors
///
/// Returns an [`Error`] if the field is absent or has the wrong shape.
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        // Mirror upstream serde: a missing field falls back to
        // deserializing from nothing, which yields `None` for `Option`
        // fields and an error for everything else.
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $ty)
                    .ok_or_else(|| type_error("number", v))
            }
        }
    )*};
}
impl_float!(f32, f64);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| type_error("integer", v))?;
                <$ty>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| type_error("integer", v))?;
                <$ty>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let u = v.as_u64().ok_or_else(|| type_error("integer", v))?;
        usize::try_from(u).map_err(|_| Error::custom("integer out of range"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let i = v.as_i64().ok_or_else(|| type_error("integer", v))?;
        isize::try_from(i).map_err(|_| Error::custom("integer out of range"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| type_error("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| type_error("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| type_error("array", v))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = Deserialize::from_value(&vec![1.0, 2.0].to_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn integer_widening() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::Float(4.0)).unwrap(), 4);
        assert!(u64::from_value(&Value::Float(4.5)).is_err());
    }

    #[test]
    fn missing_field_is_named() {
        let map = vec![("a".to_owned(), Value::Int(1))];
        let err = field::<u64>(&map, "b").unwrap_err();
        assert!(err.to_string().contains("`b`"));
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        let back: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
    }
}
