//! Minimal local `proptest` shim.
//!
//! Supports the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro over named `ident in strategy`
//! arguments, `prop_assert!`/`prop_assert_eq!`, range strategies for
//! floats and integers, tuple strategies, `any::<bool>()` and
//! `prop::collection::vec`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its exact inputs; re-run
//!   with those values in a unit test to debug.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's source location, so runs are reproducible without a
//!   `proptest-regressions` directory (existing regression files are
//!   ignored).
//! * 256 cases per test (upstream's default).

#![forbid(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG handed to strategies.
pub type TestRng = ChaCha12Rng;

/// The number of cases [`run_cases`] executes per test.
pub const CASES: u32 = 256;

/// Strategy machinery.
pub mod strategy {
    use super::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_int_strategy!(u64, usize, u32, i64, i32);

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The standard strategy for a type (see [`any`](super::any)).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Creates the marker strategy.
        pub fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let magnitude: f64 = rng.gen_range(0.0f64..1e9);
            if rng.gen() {
                magnitude
            } else {
                -magnitude
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))+) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// A strategy for `Vec`s with a random length (see
    /// [`collection::vec`](super::collection::vec)).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) length: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.length.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The standard strategy for `T` (only the types the workspace samples).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::new()
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use core::ops::Range;

    /// A strategy producing vectors of `element` with a length drawn
    /// from `length`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }
}

/// The `prop` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use super::collection;
}

/// Everything the tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::strategy::{Just, Strategy};
    pub use super::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Drives one property test: runs `body` for [`CASES`] seeded cases and
/// panics with the case's formatted inputs on the first failure.
///
/// The seed is derived from the test's source location so every run (and
/// every worker count) sees the same cases.
///
/// # Panics
///
/// Panics if any case returns an error — this is the test-failure path.
pub fn run_cases(
    file: &str,
    line: u32,
    cases: u32,
    mut body: impl FnMut(&mut TestRng) -> Result<(), String>,
) {
    // FNV-1a over the location, mixed with the line number.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in file.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^= u64::from(line);
    for case in 0..cases {
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(u64::from(case)));
        if let Err(message) = body(&mut rng) {
            panic!("property failed on case {case}/{cases}: {message}");
        }
    }
}

/// Defines property tests. Mirrors upstream's
/// `proptest! { #[test] fn name(x in strategy, ...) { ... } }` form.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(file!(), line!(), $crate::CASES, |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let __body = || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __body().map_err(|e| format!("{e}\n    inputs: {}", __inputs))
            });
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with its inputs) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0.5f64..2.0, n in 1usize..10) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(
            v in prop::collection::vec((0.0f64..1.0, 0.0f64..2.0), 1..50),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|(a, b)| (0.0..1.0).contains(a) && (0.0..2.0).contains(b)));
        }

        #[test]
        fn bools_sample_without_panicking(flag in any::<bool>()) {
            // Not a distribution test — just exercise the strategy.
            prop_assert_ne!(flag, !flag);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result =
            std::panic::catch_unwind(|| crate::run_cases("f", 1, 4, |_rng| Err("boom".to_owned())));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("boom"));
    }
}
