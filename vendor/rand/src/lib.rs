//! Minimal local `rand` shim.
//!
//! Provides the rand 0.8 API surface this workspace uses: [`RngCore`],
//! [`SeedableRng`] (whose `seed_from_u64` uses the same SplitMix64 seed
//! expansion as upstream `rand_core` 0.6, so seeded generators built on
//! it match upstream behavior), and the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`.
//!
//! Uniform floats follow upstream's algorithms: `gen::<f64>()` uses 53
//! random bits into `[0, 1)`, and `gen_range` over float ranges uses the
//! `[1, 2)` mantissa-fill technique.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of raw bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same
    /// expansion as upstream `rand_core` 0.6) and constructs the
    /// generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 from Sebastiano Vigna, public domain.
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn f64_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1), as upstream's Standard distribution.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A float in `[1, 2)` built by filling the mantissa, as upstream's
/// `UniformFloat`.
fn f64_one_two<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12))
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let scale = self.end - self.start;
        let offset = self.start - scale;
        loop {
            let res = f64_one_two(rng) * scale + offset;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let res = lo + f64_standard(rng) * (hi - lo);
        res.clamp(lo, hi)
    }
}

/// Unbiased uniform draw in `[0, span)` via Lemire's widening-multiply
/// rejection method; `span == 0` means the full 64-bit range.
fn lemire<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(lemire(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(lemire(rng, span) as $ty)
            }
        }
    )*};
}
impl_int_range!(u64, usize, u32, i64, i32);

/// Types producible by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_standard(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random bits into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports mirroring upstream's module layout.
pub mod rngs {}

/// The pieces most callers want, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0f64..5.0);
            assert!((3.0..5.0).contains(&x));
            let y = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = Counter(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn splitmix_seed_expansion_matches_reference() {
        // First two SplitMix64 outputs for state 0 (reference values from
        // the public-domain C implementation).
        struct Capture(Vec<u8>);
        impl RngCore for Capture {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        impl SeedableRng for Capture {
            type Seed = [u8; 16];
            fn from_seed(seed: [u8; 16]) -> Self {
                Capture(seed.to_vec())
            }
        }
        let c = Capture::seed_from_u64(0);
        let first = u64::from_le_bytes(c.0[..8].try_into().unwrap());
        let second = u64::from_le_bytes(c.0[8..].try_into().unwrap());
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
        assert_eq!(second, 0x6E78_9E6A_A1B9_65F4);
    }
}
