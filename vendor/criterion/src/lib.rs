//! Minimal local `criterion` shim.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a plain wall-clock timing loop.
//!
//! Compared to upstream there is no statistical analysis, no warm-up
//! tuning, no plots and no saved baselines: each benchmark runs a short
//! calibration pass, then `samples` timed batches, and prints the
//! per-iteration median. That is enough for `cargo bench` to build, run
//! and give order-of-magnitude numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 100;
/// Target wall-clock time for one sample batch.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    result: Option<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its median per-iteration
    /// wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample batch?
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(start.elapsed() / iters_per_sample as u32);
        }
        per_iter.sort();
        self.result = Some(per_iter[per_iter.len() / 2]);
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(median) => println!("bench: {id:<45} median {median:>12.2?} / iter"),
        None => println!("bench: {id:<45} (no iter call)"),
    }
}

/// The benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a group runner, mirroring
/// upstream's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark in this group once.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark in this group once.
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary, mirroring upstream's
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_routine() {
        let mut criterion = Criterion::default();
        criterion.sample_size(3);
        let mut calls = 0u64;
        criterion.bench_function("shim_smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
