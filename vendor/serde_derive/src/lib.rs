//! Minimal local `serde_derive` shim.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the type
//! shapes this workspace uses — named-field structs, newtype/tuple
//! structs (including `#[serde(transparent)]`), and enums with unit or
//! newtype variants — by hand-parsing the item's token stream (no
//! `syn`/`quote`, which are unreachable in this build environment) and
//! emitting impls of the value-tree traits from the local `serde` shim.
//!
//! Generated code never needs to name field types: deserialization relies
//! on type inference through struct/variant constructors, so only field
//! and variant *names* are extracted from the input.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    /// `struct S { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(A);` or `struct S(A, B);` — arity recorded.
    TupleStruct { name: String, arity: usize },
    /// `enum E { Unit, Newtype(T) }` — `(variant, has_payload)`.
    Enum {
        name: String,
        variants: Vec<(String, bool)>,
    },
}

fn error(message: &str) -> TokenStream {
    format!("::core::compile_error!({message:?});")
        .parse()
        .expect("compile_error expansion parses")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => expand_serialize(&shape)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(e) => error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => expand_deserialize(&shape)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(e) => error(&e),
    }
}

/// Parses the item into a [`Shape`], skipping attributes and visibility.
fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    // Scan past attributes/visibility to the `struct`/`enum` keyword.
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the bracketed attribute body
            }
            TokenTree::Ident(id) => {
                let id = id.to_string();
                if id == "pub" {
                    // Possible `pub(crate)` restriction group.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                } else if id == "struct" || id == "enum" {
                    kind = Some(id);
                    break;
                } else {
                    return Err(format!("serde shim derive: unexpected `{id}`"));
                }
            }
            other => {
                return Err(format!("serde shim derive: unexpected token `{other}`"));
            }
        }
    }
    let kind = kind.ok_or("serde shim derive: no struct/enum found")?;
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected type name, got {other:?}"
            ))
        }
    };
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            } else {
                Ok(Shape::Enum {
                    name,
                    variants: parse_variants(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("serde shim derive: parenthesized enum body".into());
            }
            Ok(Shape::TupleStruct {
                name,
                arity: count_top_level_fields(g.stream()),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        )),
        other => Err(format!(
            "serde shim derive: unexpected body for `{name}`: {other:?}"
        )),
    }
}

/// Extracts field names from a named-struct body.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(field) = tt else {
            return Err(format!(
                "serde shim derive: expected field name, got `{tt}`"
            ));
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde shim derive: expected `:` after field, got {other:?}"
                ))
            }
        }
        // Skip the type: consume until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Extracts `(name, has_payload)` pairs from an enum body; rejects tuple
/// variants with more than one field and struct variants.
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tt else {
            return Err(format!("serde shim derive: expected variant, got `{tt}`"));
        };
        let variant = variant.to_string();
        let mut has_payload = false;
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_top_level_fields(g.stream()) != 1 {
                    return Err(format!(
                        "serde shim derive: variant `{variant}` must have exactly one field"
                    ));
                }
                has_payload = true;
                tokens.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde shim derive: struct variant `{variant}` is not supported"
                ));
            }
            _ => {}
        }
        variants.push((variant, has_payload));
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => {
                return Err(format!(
                    "serde shim derive: expected `,` after variant, got {other:?}"
                ))
            }
        }
    }
    Ok(variants)
}

/// Counts comma-separated items at the top level of a token stream,
/// ignoring commas nested inside angle brackets.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    let mut pending = false;
    for tt in stream {
        saw_tokens = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending || (saw_tokens && count == 0) {
        count += 1;
    }
    if !saw_tokens {
        0
    } else {
        count
    }
}

fn expand_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_owned()
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{items}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "{name}::{v}(inner) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Serialize::to_value(inner))]),"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Value::Str(::std::string::String::from({v:?})),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn expand_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(m, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                             ::std::format!(\"expected object for {name}, got {{}}\", v.kind())))?;\n\
                         ::core::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::core::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(v)?))"
                )
            } else {
                let items: String = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(s.get({i}).ok_or_else(|| \
                             ::serde::Error::custom(\"tuple struct too short\"))?)?,"
                        )
                    })
                    .collect();
                format!(
                    "let s = v.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                     ::core::result::Result::Ok({name}({items}))"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, has_payload)| !has_payload)
                .map(|(v, _)| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, has_payload)| *has_payload)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::core::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(inner)?)),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::core::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (k, inner) = &m[0];\n\
                                 match k.as_str() {{\n\
                                     {payload_arms}\n\
                                     other => ::core::result::Result::Err(::serde::Error::custom(\
                                         ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::core::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"expected {name} variant, got {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
