//! Minimal local `serde_json` shim.
//!
//! Serializes the local `serde` shim's value tree to JSON text and parses
//! JSON text back. Floats are written with Rust's shortest round-trip
//! `Display` formatting (integral floats gain a trailing `.0` so they
//! read back as floats), which is what the upstream crate's
//! `float_roundtrip` feature guarantees.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if a float is non-finite (JSON has no
/// representation for NaN or infinities).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to a human-readable, two-space-indented JSON string.
///
/// # Errors
///
/// Same as [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a JSON string into a value.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem, or the
/// shape mismatch reported by `T`'s deserializer.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            // Rust's `Display` for f64 is the shortest string that parses
            // back to the same bits; add `.0` to integral values so the
            // reader sees a float.
            let mut text = format!("{f}");
            if !text.contains('.') {
                text.push_str(".0");
            }
            out.push_str(&text);
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&7u64).unwrap(), "7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
        let back: f64 = from_str("3").unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn float_shortest_round_trip() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123456.789012345, f64::MAX] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn nested_structures() {
        let v = Value::Map(vec![
            (
                "a".into(),
                Value::Seq(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("b".into(), Value::Str("x".into())),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"a\":[1,2.5],\"b\":\"x\"}");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::Int(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v: Value = from_str("[-5, 1e3, -2.5e-2]").unwrap();
        assert_eq!(
            v,
            Value::Seq(vec![
                Value::Int(-5),
                Value::Float(1e3),
                Value::Float(-2.5e-2)
            ])
        );
    }
}
