//! Minimal local `rand_chacha` shim: ChaCha-based deterministic RNGs.
//!
//! This is a real ChaCha implementation (verified against the RFC 8439
//! ChaCha20 test vector), exposed through the local `rand` shim's
//! [`RngCore`]/[`SeedableRng`] traits. Only the seeding paths this
//! workspace uses are provided; the stream/word-position APIs of the
//! upstream crate are omitted.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Runs the ChaCha block function with `rounds` rounds over `input`.
fn chacha_block(input: &[u32; 16], rounds: usize) -> [u32; 16] {
    let mut state = *input;
    for _ in 0..rounds / 2 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (out, inp) in state.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    state
}

macro_rules! chacha_rng {
    ($(#[$meta:meta])* $name:ident, $rounds:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $name {
            /// Key words 0..8, then a 64-bit block counter in words 12-13
            /// and zero nonce words 14-15.
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut input = [0u32; 16];
                input[..4].copy_from_slice(&CONSTANTS);
                input[4..12].copy_from_slice(&self.key);
                input[12] = self.counter as u32;
                input[13] = (self.counter >> 32) as u32;
                self.buffer = chacha_block(&input, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                Self {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = u64::from(self.next_u32());
                let hi = u64::from(self.next_u32());
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    /// A ChaCha generator with 8 rounds.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// A ChaCha generator with 12 rounds (the upstream default trade-off
    /// between speed and security margin).
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// A ChaCha generator with the full 20 rounds.
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_block_matches_rfc8439() {
        // RFC 8439 section 2.3.2 test vector.
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        for (i, word) in input[4..12].iter_mut().enumerate() {
            let i = i as u32 * 4;
            *word = u32::from_le_bytes([i as u8, (i + 1) as u8, (i + 2) as u8, (i + 3) as u8]);
        }
        input[12] = 1;
        input[13] = 0x0900_0000;
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let out = chacha_block(&input, 20);
        assert_eq!(
            out,
            [
                0xe4e7_f110,
                0x1559_3bd1,
                0x1fdd_0f50,
                0xc471_20a3,
                0xc7f4_d1c7,
                0x0368_c033,
                0x9aaa_2204,
                0x4e6c_d4c3,
                0x4664_82d2,
                0x09aa_9f07,
                0x05d7_c214,
                0xa202_8bd9,
                0xd19c_12b5,
                0xb94e_16de,
                0xe883_d0cb,
                0x4e3c_50a2,
            ]
        );
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(1);
        let mut c = ChaCha12Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_sampling_is_uniform_ish() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
