//! # fcdpm — fuel-efficient dynamic power management
//!
//! A complete, from-scratch reproduction of *Zhuo, Chakrabarti, Lee &
//! Chang, "Dynamic Power Management with Hybrid Power Sources", DAC 2007*:
//! the FC-DPM policy, its Conv-DPM and ASAP-DPM baselines, and every
//! substrate they run on — fuel-cell system models, charge storage,
//! DPM-enabled device models, workload generators, period predictors and
//! a co-simulator.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof. Depend on it for applications; depend on the individual crates
//! (`fcdpm-core`, `fcdpm-sim`, …) for narrower builds.
//!
//! # Quickstart
//!
//! ```
//! use fcdpm::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Experiment 1: a DVD camcorder on an FC hybrid source.
//! let scenario = Scenario::experiment1();
//! let sim = HybridSimulator::dac07(&scenario.device);
//! let capacity = Charge::from_milliamp_minutes(100.0);
//!
//! // Run the paper's FC-DPM policy.
//! let mut fc_dpm = FcDpm::new(
//!     FuelOptimizer::dac07(),
//!     &scenario.device,
//!     capacity,
//!     scenario.sigma,
//!     scenario.active_current_estimate,
//! );
//! let mut storage = IdealStorage::new(capacity, capacity * 0.5);
//! let mut sleep = PredictiveSleep::new(scenario.rho);
//! let result = sim.run(&scenario.trace, &mut sleep, &mut fc_dpm, &mut storage)?;
//! println!("fuel: {:.1}", result.metrics.fuel.total());
//! # Ok(())
//! # }
//! ```
//!
//! # Crate map
//!
//! | Module | Workspace crate | Contents |
//! |---|---|---|
//! | [`units`] | `fcdpm-units` | typed quantities (A, V, W, s, A·s, J) |
//! | [`fuelcell`] | `fcdpm-fuelcell` | stack, DC-DC, controller, efficiency, fuel |
//! | [`storage`] | `fcdpm-storage` | super-capacitor / Li-ion / ideal buffers |
//! | [`device`] | `fcdpm-device` | power-state machines, device presets |
//! | [`workload`] | `fcdpm-workload` | traces, generators, scenarios |
//! | [`predict`] | `fcdpm-predict` | idle/active period predictors |
//! | [`core`] | `fcdpm-core` | the optimizer and the three policies |
//! | [`sim`] | `fcdpm-sim` | the hybrid-source co-simulator |
//! | [`dvs`] | `fcdpm-dvs` | fuel-aware dynamic voltage scaling (the DAC'06/ISLPED'06 companion) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fcdpm_core as core;
pub use fcdpm_device as device;
pub use fcdpm_dvs as dvs;
pub use fcdpm_fuelcell as fuelcell;
pub use fcdpm_predict as predict;
pub use fcdpm_sim as sim;
pub use fcdpm_storage as storage;
pub use fcdpm_units as units;
pub use fcdpm_workload as workload;

/// The most frequently used items, in one import.
pub mod prelude {
    pub use fcdpm_core::dpm::{
        AdaptiveTimeoutSleep, AlwaysSleep, NeverSleep, OracleSleep, PredictiveSleep,
        ProbabilisticSleep, SleepDecision, SleepPolicy, TimeoutSleep,
    };
    pub use fcdpm_core::policy::{AsapDpm, ConvDpm, FcDpm, OutputLevels, Quantized};
    pub use fcdpm_core::{
        ConstraintCase, CoreError, FcOutputPolicy, FuelOptimizer, Overhead, PolicyPhase, SlotPlan,
        SlotProfile, StorageContext,
    };
    pub use fcdpm_device::{presets, DeviceSpec, PowerMode, PowerStateMachine, SlotTimeline};
    pub use fcdpm_fuelcell::{
        FcSystem, FuelGauge, GibbsCoefficient, HydrogenTank, LinearEfficiency, PolarizationCurve,
    };
    pub use fcdpm_predict::{
        AdaptiveLearningTree, ExponentialAverage, LastValue, MeanEstimator, OraclePredictor,
        Predictor, SlidingWindowRegression,
    };
    pub use fcdpm_sim::{HybridSimulator, ProfileRecorder, SimError, SimMetrics, SimResult};
    pub use fcdpm_storage::{
        ChargeStorage, IdealStorage, KineticBattery, LiIonBattery, SuperCapacitor,
    };
    pub use fcdpm_units::{Amps, Charge, CurrentRange, Efficiency, Energy, Seconds, Volts, Watts};
    pub use fcdpm_workload::{
        aggregate_idles, AggregatedTrace, CamcorderTrace, ParetoTrace, Scenario, SyntheticTrace,
        TaskSlot, Trace,
    };
}
